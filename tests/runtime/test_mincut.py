"""Acceptance suite of the min-cut balanced partitioner.

Three bars, mirroring the tentpole's claims:

* **determinism** — the same seed reproduces the same plan, bit for bit;
* **balance** — across random graphs and seeds the measured imbalance stays
  under the configured cap (the property the straggler win rests on);
* **equivalence** — a mincut plan that happens to respect connected
  components is provably exact, so its merged results must be identical —
  float for float — to component-exact runs for EVERY registered policy, on
  the dict store and the dense store, over the pickled process executor and
  the shared-memory fabric.

Plus the satellites that live at the partition layer: empty shards are
pruned from every plan before dispatch, and sharded results report the
``straggler_ratio`` wall-time skew.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.interaction import Interaction
from repro.core.network import TemporalInteractionNetwork
from repro.exceptions import RunConfigurationError
from repro.policies.registry import available_policies
from repro.runtime import (
    RunConfig,
    Runner,
    interaction_graph,
    mincut_membership,
    partition_network,
    run,
)
from repro.stores import StoreSpec

#: Structural parameters for the policies whose constructors require them.
STRUCTURAL_OPTIONS = {
    "proportional-budget": {"capacity": 20},
    "proportional-windowed": {"window": 150},
    "proportional-time-windowed": {"window": 50.0},
}

#: The dense backend applies to fixed-dimension vector roles and falls back
#: to dicts elsewhere, so it is safe for every policy.
STORES = {
    "dict": None,
    "dense": StoreSpec("dense"),
}


def component_network(num_components=4, chain=6, name="chains"):
    """Disjoint equal chains: component c is c0 -> c1 -> ... -> c{chain}."""
    interactions = []
    for component in range(num_components):
        for step in range(chain):
            interactions.append(
                Interaction(
                    f"c{component}n{step}",
                    f"c{component}n{step + 1}",
                    float(step) + component / 100.0,
                    2.0 + step,
                )
            )
    interactions.sort(key=lambda i: i.time)
    return TemporalInteractionNetwork.from_interactions(interactions, name=name)


def random_network(rng, num_vertices=60, num_interactions=600):
    """One connected-ish random network with near-equal vertex loads.

    Sources cycle round-robin so every vertex sources the same number of
    interactions (up to one) — the balance cap is then feasible at vertex
    granularity and the cap property must hold exactly.
    """
    vertices = [f"v{i}" for i in range(num_vertices)]
    interactions = []
    for position in range(num_interactions):
        source = vertices[position % num_vertices]
        destination = vertices[int(rng.integers(num_vertices))]
        if destination == source:
            destination = vertices[(position + 1) % num_vertices]
        interactions.append(
            Interaction(source, destination, float(position), 1.0 + position % 3)
        )
    return TemporalInteractionNetwork.from_interactions(interactions, name="random")


class TestInteractionGraph:
    def test_weights_coalesce_both_directions(self):
        interactions = [
            Interaction("a", "b", 1.0, 1.0),
            Interaction("b", "a", 2.0, 1.0),
            Interaction("a", "b", 3.0, 1.0),
            Interaction("a", "a", 4.0, 1.0),  # self-loop: never cut, dropped
            Interaction("b", "c", 5.0, 1.0),
        ]
        network = TemporalInteractionNetwork.from_interactions(interactions)
        n, edge_u, edge_v, edge_weight, load = interaction_graph(network.to_block())
        assert n == 3
        edges = {
            (int(u), int(v)): int(w)
            for u, v, w in zip(edge_u, edge_v, edge_weight)
        }
        # ids follow registration order: a=0, b=1, c=2
        assert edges == {(0, 1): 3, (1, 2): 1}
        assert load.tolist() == [3, 2, 0]  # interactions *sourced* per vertex

    def test_load_drives_shard_work(self):
        network = component_network()
        block = network.to_block()
        _, _, _, _, load = interaction_graph(block)
        assert int(load.sum()) == network.num_interactions


class TestDeterminism:
    def test_same_seed_identical_plan(self):
        network = random_network(np.random.default_rng(0))
        plans = [
            partition_network(network, 3, mode="mincut", seed=11)
            for _ in range(2)
        ]
        assert [s.vertices for s in plans[0].shards] == [
            s.vertices for s in plans[1].shards
        ]
        assert plans[0].stats.cut_weight == plans[1].stats.cut_weight
        assert plans[0].cross_shard_interactions == plans[1].cross_shard_interactions

    def test_membership_identical_across_calls(self):
        network = random_network(np.random.default_rng(1))
        n, eu, ev, ew, load = interaction_graph(network.to_block())
        first, exact_first = mincut_membership(n, eu, ev, ew, load, 4, seed=3)
        second, exact_second = mincut_membership(n, eu, ev, ew, load, 4, seed=3)
        assert exact_first == exact_second
        assert np.array_equal(first, second)

    def test_seed_reaches_partitioner_from_config(self):
        network = random_network(np.random.default_rng(2))
        results = [
            Runner(
                RunConfig(
                    dataset=network,
                    policy="noprov",
                    shards=3,
                    shard_strategy="mincut",
                    partition_seed=5,
                )
            ).run()
            for _ in range(2)
        ]
        assert [s.vertices for s in results[0].partition.shards] == [
            s.vertices for s in results[1].partition.shards
        ]


class TestBalanceCap:
    @pytest.mark.parametrize("graph_seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("partition_seed", [0, 7])
    @pytest.mark.parametrize("num_shards", [2, 3])
    @pytest.mark.parametrize("cap", [1.1, 1.3])
    def test_imbalance_within_cap(self, graph_seed, partition_seed, num_shards, cap):
        network = random_network(np.random.default_rng(graph_seed))
        plan = partition_network(
            network,
            num_shards,
            mode="mincut",
            imbalance=cap,
            seed=partition_seed,
        )
        assert plan.stats.imbalance <= cap + 1e-9
        # the measured imbalance is consistent with the shard loads
        loads = [shard.num_interactions for shard in plan.shards]
        ideal = sum(loads) / len(plan.shards)
        assert plan.stats.imbalance == pytest.approx(max(loads) / ideal)

    def test_cap_below_one_rejected(self):
        network = component_network()
        with pytest.raises(RunConfigurationError):
            partition_network(network, 2, mode="mincut", imbalance=0.9)
        with pytest.raises(RunConfigurationError):
            RunConfig(dataset=network, shards=2, shard_imbalance=0.9)

    def test_mincut_beats_hash_on_preset(self):
        from repro.datasets.catalog import load_preset

        network = load_preset("taxis", scale=0.2)
        block = network.to_block()
        hashed = partition_network(network, 2, mode="hash", block=block)
        mincut = partition_network(network, 2, mode="mincut", block=block)
        assert mincut.stats.cut_weight < hashed.stats.cut_weight
        assert mincut.stats.imbalance <= 1.1 + 1e-9


class TestExactMode:
    def test_tiny_component_graph_reaches_zero_cut(self):
        plan = partition_network(component_network(), 2, mode="mincut")
        assert plan.stats.exact
        assert plan.exact  # zero cross-shard interactions => provably exact
        assert plan.cross_shard_interactions == 0
        assert plan.stats.cut_weight == 0

    def test_tiny_single_component_searched_by_vertex(self):
        # A 6-vertex ring is one component with 15 movable vertices at most:
        # the branch-and-bound runs vertex by vertex and balances the ring.
        interactions = [
            Interaction(f"v{i}", f"v{(i + 1) % 6}", float(t), 1.0)
            for t, i in enumerate(list(range(6)) * 3)
        ]
        network = TemporalInteractionNetwork.from_interactions(interactions)
        plan = partition_network(network, 2, mode="mincut")
        assert plan.stats.exact
        loads = sorted(shard.num_interactions for shard in plan.shards)
        assert loads == [9, 9]
        # a balanced 2-cut of a uniform ring cuts exactly two pair-edges
        assert plan.stats.cut_edges == 2

    def test_large_graphs_stay_heuristic(self):
        network = random_network(np.random.default_rng(4))
        plan = partition_network(network, 2, mode="mincut")
        assert not plan.stats.exact


class TestEmptyShardPruning:
    def test_hash_plan_with_shards_beyond_vertices(self):
        network = component_network(num_components=2, chain=4)  # 10 vertices
        plan = partition_network(network, 64, mode="hash")
        assert plan.pruned_shards > 0
        assert all(shard.num_interactions > 0 for shard in plan.shards)
        assert [shard.index for shard in plan.shards] == list(
            range(len(plan.shards))
        )
        # no interaction or vertex is lost to pruning
        assert (
            sum(shard.num_interactions for shard in plan.shards)
            == network.num_interactions
        )
        owned = [v for shard in plan.shards for v in shard.vertices]
        assert sorted(owned) == sorted(network.vertices)

    @pytest.mark.parametrize("shared_memory", [False, True])
    def test_pruned_plan_runs_end_to_end(self, shared_memory):
        network = component_network(num_components=2, chain=4)
        baseline = run(dataset=network, policy="fifo")
        sharded = run(
            dataset=network,
            policy="fifo",
            shards=64,
            shard_by="hash",
            shard_executor="processes" if shared_memory else "serial",
            shared_memory=shared_memory or None,
        )
        assert sharded.statistics.interactions == baseline.statistics.interactions
        assert len(sharded.shard_runs) == len(sharded.partition.shards)
        assert sharded.partition.pruned_shards > 0
        document = json.loads(sharded.to_json())
        assert document["sharding"]["pruned_shards"] == (
            sharded.partition.pruned_shards
        )

    def test_mincut_plans_carry_no_empty_shards(self):
        network = component_network(num_components=2, chain=4)
        plan = partition_network(network, 16, mode="mincut")
        assert all(shard.num_interactions > 0 for shard in plan.shards)


class TestStragglerRatio:
    def test_reported_for_sharded_runs(self):
        sharded = run(
            dataset=component_network(), policy="fifo", shards=2
        )
        ratio = sharded.straggler_ratio
        if ratio is not None:  # None when a shard timed at exactly zero
            assert ratio >= 1.0
        document = json.loads(sharded.to_json())
        assert "straggler_ratio" in document["sharding"]

    def test_none_for_single_runs(self):
        result = run(dataset=component_network(), policy="fifo")
        assert result.straggler_ratio is None
        assert result.partition_stats is None


class TestPartitionStatsExport:
    def test_all_strategies_carry_stats(self):
        network = component_network()
        for mode in ("components", "hash", "mincut"):
            plan = partition_network(network, 2, mode=mode)
            assert plan.stats is not None
            assert plan.stats.strategy == mode
            assert plan.stats.shards == len(plan.shards)
            assert plan.stats.build_seconds >= 0.0

    def test_run_result_surfaces_partition_stats(self):
        sharded = run(
            dataset=component_network(),
            policy="noprov",
            shards=2,
            shard_strategy="mincut",
        )
        stats = sharded.partition_stats
        assert stats["strategy"] == "mincut"
        assert stats["cut_weight"] == 0
        assert stats["balance_cap"] == 1.1
        document = json.loads(sharded.to_json())
        assert document["sharding"]["partition"] == stats

    def test_strategy_alias_normalises(self):
        config = RunConfig(dataset="taxis", shards=2, shard_strategy="component")
        assert config.shard_by == "components"
        with pytest.raises(RunConfigurationError):
            RunConfig(dataset="taxis", shards=2, shard_strategy="astrology")


def snapshot_dict(result):
    snapshot = result.snapshot()
    return {vertex: origins.as_dict() for vertex, origins in snapshot.items()}


def assert_equivalent(reference, candidate):
    assert reference.statistics.interactions == candidate.statistics.interactions
    assert snapshot_dict(reference) == snapshot_dict(candidate)
    assert dict(reference.buffer_totals()) == dict(candidate.buffer_totals())
    assert (
        reference.statistics.final_entry_count
        == candidate.statistics.final_entry_count
    )


@pytest.fixture(scope="module")
def equivalence_network():
    return component_network(num_components=4, chain=6, name="equivalence")


class TestComponentRespectingEquivalence:
    """Mincut plans that respect components are bit-identical to exact runs.

    On a network of equal disjoint components the exact mode reaches cut 0,
    so the plan provably reproduces the global provenance — results must
    match component-exact runs float for float, for every registered policy
    x dict/dense store x pickled/shm executor.
    """

    @pytest.mark.parametrize("store", sorted(STORES))
    @pytest.mark.parametrize("policy_name", available_policies())
    def test_pickled_executor(self, equivalence_network, policy_name, store):
        reference, candidate = self._pair(
            equivalence_network, policy_name, store, shared_memory=None,
            shard_executor="processes",
        )
        assert candidate.partition.exact
        assert_equivalent(reference, candidate)

    @pytest.mark.parametrize("store", sorted(STORES))
    @pytest.mark.parametrize("policy_name", available_policies())
    def test_shm_fabric(self, equivalence_network, policy_name, store):
        reference, candidate = self._pair(
            equivalence_network, policy_name, store, shared_memory=True,
            shard_executor="processes",
        )
        assert candidate.partition.exact
        assert_equivalent(reference, candidate)

    @staticmethod
    def _pair(network, policy_name, store, *, shared_memory, shard_executor):
        common = dict(
            dataset=network,
            policy=policy_name,
            policy_options=STRUCTURAL_OPTIONS.get(policy_name, {}),
            store=STORES[store],
            shards=2,
            batch_size=64,
        )
        reference = Runner(
            RunConfig(**common, shard_by="components")
        ).run()
        candidate = Runner(
            RunConfig(
                **common,
                shard_strategy="mincut",
                shard_executor=shard_executor,
                shared_memory=shared_memory,
            )
        ).run()
        return reference, candidate
