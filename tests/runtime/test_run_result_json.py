"""Richer RunResult: structured JSON export, per-shard timing, store stats.

Also holds the spill acceptance test of the store subsystem: a sharded
SQLite-store run completes under a memory ceiling that the dict-store run
exceeds, and reports the spilled bytes in its result.
"""

from __future__ import annotations

import json

import pytest

from repro.datasets.catalog import load_preset
from repro.metrics.memory import policy_memory_bytes
from repro.runtime import RunConfig, Runner
from repro.stores import StoreSpec


@pytest.fixture(scope="module")
def network():
    return load_preset("taxis", scale=0.1)


class TestStructuredExport:
    def test_to_json_roundtrips_single_run(self, network):
        result = Runner(
            RunConfig(dataset=network, policy="fifo", store="sqlite", sample_every=100)
        ).run()
        document = json.loads(result.to_json())
        assert document["dataset"] == "taxis"
        assert document["policy"] == "fifo"
        assert document["feasible"] is True
        statistics = document["statistics"]
        assert statistics["interactions"] == result.statistics.interactions
        assert statistics["interactions_per_second"] > 0
        assert statistics["samples"] == result.statistics.samples
        assert document["store"]["backend"] == "sqlite"
        assert document["store"]["stats"]["buffers"]["entries"] > 0
        assert document["sharding"]["sharded"] is False
        assert document["sharding"]["shards"] == []

    def test_to_json_reports_per_shard_breakdown(self, network):
        result = Runner(
            RunConfig(dataset=network, policy="proportional-sparse", shards=3)
        ).run()
        document = json.loads(result.to_json())
        shards = document["sharding"]["shards"]
        assert len(shards) == len(result.shard_runs)
        assert document["sharding"]["mode"] == "components"
        assert sum(row["interactions"] for row in shards) == (
            result.statistics.interactions
        )
        for row in shards:
            assert row["elapsed_seconds"] >= 0
            assert "vectors" in row["store"] and "totals" in row["store"]

    def test_store_stats_present_without_explicit_store(self, network):
        from repro.stores import resolve_store_spec

        result = Runner(RunConfig(dataset=network, policy="fifo")).run()
        # the policy falls back to the environment default (dict unless
        # REPRO_DEFAULT_STORE overrides it)
        assert result.store_stats["buffers"].backend == resolve_store_spec(None).backend
        assert result.store_stats["buffers"].entries > 0
        document = json.loads(result.to_json())
        assert document["store"]["backend"] is None  # policy default, not forced

    def test_policy_name_for_instance_specs(self, network):
        from repro.policies.receipt_order import LifoPolicy

        result = Runner(RunConfig(dataset=network, policy=LifoPolicy())).run()
        assert result.policy_name == "lifo"


class TestSpillFeasibility:
    """Acceptance: the sqlite store turns an infeasible run into a slow one."""

    def test_sqlite_sharded_run_completes_under_ceiling_dict_exceeds(self, network):
        spill_store = StoreSpec("sqlite", {"hot_capacity": 8})
        # Measure both footprints of the full per-vertex entry state: the
        # dict store keeps everything resident, the spill store only its
        # hot tiers.  Any ceiling strictly between the two separates them.
        dict_run = Runner(
            RunConfig(dataset=network, policy="fifo", measure_memory=True)
        ).run()
        resident_run = Runner(
            RunConfig(
                dataset=network, policy="fifo", store=spill_store, measure_memory=True
            )
        ).run()
        assert resident_run.memory_bytes < dict_run.memory_bytes
        ceiling = (resident_run.memory_bytes + dict_run.memory_bytes) // 2

        config = dict(
            dataset=network,
            policy="fifo",
            shards=2,
            shard_by="hash",
            memory_ceiling_bytes=ceiling,
        )

        infeasible = Runner(RunConfig(**config)).run()
        assert not infeasible.feasible
        assert infeasible.memory_bytes > ceiling

        spilling = Runner(RunConfig(**config, store=spill_store)).run()
        assert spilling.feasible, spilling.note
        assert spilling.memory_bytes <= ceiling
        assert spilling.spilled_bytes > 0
        assert spilling.statistics.interactions == dict_run.statistics.interactions
        # the spill shows up in the structured export, per shard and in total
        document = json.loads(spilling.to_json())
        total = sum(
            stats["spilled_bytes"]
            for stats in document["store"]["stats"].values()
        )
        assert total == spilling.spilled_bytes
        assert any(
            row["store"]["buffers"]["spilled_bytes"] > 0
            for row in document["sharding"]["shards"]
        )

    def test_spilled_single_run_stays_under_midrun_ceiling(self, network):
        """The ceiling observer sees only resident state, so spilling runs
        survive periodic checks that abort the dict-store run mid-stream."""
        spill_store = StoreSpec("sqlite", {"hot_capacity": 8})
        dict_run = Runner(
            RunConfig(dataset=network, policy="fifo", measure_memory=True)
        ).run()
        resident_run = Runner(
            RunConfig(
                dataset=network, policy="fifo", store=spill_store, measure_memory=True
            )
        ).run()
        ceiling = (resident_run.memory_bytes + dict_run.memory_bytes) // 2

        aborted = Runner(
            RunConfig(
                dataset=network,
                policy="fifo",
                memory_ceiling_bytes=ceiling,
                memory_check_every=200,
                batch_size=1,
            )
        ).run()
        assert not aborted.feasible
        assert aborted.statistics.interactions < dict_run.statistics.interactions

        spilling = Runner(
            RunConfig(
                dataset=network,
                policy="fifo",
                store=spill_store,
                memory_ceiling_bytes=ceiling,
                memory_check_every=200,
                batch_size=1,
            )
        ).run()
        assert spilling.feasible, spilling.note
        assert spilling.statistics.interactions == dict_run.statistics.interactions
        assert spilling.spilled_bytes > 0

    def test_policy_memory_counts_resident_state_only(self, network):
        from repro.policies.registry import make_policy

        spilled = make_policy("fifo", store=StoreSpec("sqlite", {"hot_capacity": 8}))
        resident = make_policy("fifo")
        spilled.reset(network.vertices)
        resident.reset(network.vertices)
        spilled.process_all(network.interactions)
        resident.process_all(network.interactions)
        assert policy_memory_bytes(spilled) < policy_memory_bytes(resident) / 2
