"""Unit tests for the Runner facade and RunConfig validation."""

from __future__ import annotations

import pytest

from repro.core.checkpoint import load_engine
from repro.core.interaction import Interaction
from repro.core.network import TemporalInteractionNetwork
from repro.datasets.io import write_interactions_csv
from repro.exceptions import RunConfigurationError
from repro.policies.no_provenance import NoProvenancePolicy
from repro.policies.receipt_order import FifoPolicy
from repro.runtime import RunConfig, Runner, build_policy, run


class TestDatasetResolution:
    def test_preset_by_name(self):
        result = run(dataset="taxis", policy="fifo", scale=0.02)
        assert result.network is not None
        assert result.dataset_name == "taxis"
        assert result.statistics.interactions == result.network.num_interactions

    def test_in_memory_network(self, paper_network):
        result = run(dataset=paper_network, policy="fifo")
        assert result.statistics.interactions == 6
        assert result.buffer_total("v0") == pytest.approx(3)

    def test_raw_interaction_iterable(self, paper_interactions):
        result = run(dataset=iter(paper_interactions), policy="fifo")
        assert result.statistics.interactions == 6
        assert result.network is None

    def test_csv_path_materialised(self, tmp_path, paper_interactions):
        path = tmp_path / "net.csv"
        write_interactions_csv(paper_interactions, path)
        result = run(dataset=str(path), policy="fifo")
        assert result.network is not None
        assert result.network.num_interactions == 6
        assert result.dataset_name == "net"

    def test_csv_path_streamed(self, tmp_path, paper_interactions):
        path = tmp_path / "net.csv"
        write_interactions_csv(paper_interactions, path)
        result = run(dataset=str(path), policy="fifo", stream=True)
        assert result.network is None  # never materialised
        assert result.statistics.interactions == 6
        assert result.buffer_total("v0") == pytest.approx(3)

    def test_streamed_matches_materialised(self, tmp_path, tiny_taxis_network):
        path = tmp_path / "taxis.csv"
        write_interactions_csv(tiny_taxis_network.interactions, path)
        materialised = run(dataset=str(path), policy="proportional-sparse", vertex_type=int)
        streamed = run(
            dataset=str(path), policy="proportional-sparse", stream=True, vertex_type=int
        )
        assert materialised.buffer_totals() == streamed.buffer_totals()


class TestPolicyConstruction:
    def test_policy_instance_used_directly(self, paper_network):
        policy = FifoPolicy()
        result = run(dataset=paper_network, policy=policy)
        assert result.policy is policy

    def test_structural_options(self, tiny_taxis_network):
        result = run(
            dataset=tiny_taxis_network,
            policy="proportional-budget",
            policy_options={"capacity": 7},
        )
        assert result.policy.capacity == 7

    def test_selective_resolves_top_k(self, tiny_taxis_network):
        config = RunConfig(
            dataset=tiny_taxis_network,
            policy="proportional-selective",
            policy_options={"k": 3},
        )
        policy = build_policy(config, tiny_taxis_network)
        assert len(policy.tracked) == 3

    def test_selective_without_network_rejected(self):
        config = RunConfig(dataset=iter(()), policy="proportional-selective")
        with pytest.raises(RunConfigurationError):
            build_policy(config, None)

    def test_grouped_resolves_groups(self, tiny_taxis_network):
        config = RunConfig(
            dataset=tiny_taxis_network,
            policy="proportional-grouped",
            policy_options={"num_groups": 4},
        )
        policy = build_policy(config, tiny_taxis_network)
        assert policy is not None

    def test_dense_gets_vertex_universe(self, paper_network):
        config = RunConfig(dataset=paper_network, policy="proportional-dense")
        policy = build_policy(config, paper_network)
        result = Runner(config).run()
        assert result.buffer_total("v0") == pytest.approx(3)
        assert policy.entry_count() >= 0


class TestObserversAndCheckpoints:
    def test_observers_see_every_interaction(self, paper_network):
        seen = []
        run(
            dataset=paper_network,
            policy="fifo",
            observers=[lambda _e, _i, position: seen.append(position)],
            batch_size=64,  # observers force per-interaction execution
        )
        assert seen == [0, 1, 2, 3, 4, 5]

    def test_final_checkpoint_written(self, tmp_path, paper_network):
        path = tmp_path / "engine.pkl"
        run(dataset=paper_network, policy="fifo", checkpoint_path=path)
        restored = load_engine(path)
        assert restored.interactions_processed == 6
        assert restored.buffer_total("v0") == pytest.approx(3)

    def test_periodic_checkpointing(self, tmp_path, paper_network):
        path = tmp_path / "engine.pkl"
        run(
            dataset=paper_network,
            policy="fifo",
            checkpoint_path=path,
            checkpoint_every=2,
        )
        assert load_engine(path).interactions_processed == 6

    def test_checkpoint_every_without_path_rejected(self, paper_network):
        with pytest.raises(RunConfigurationError):
            run(dataset=paper_network, policy="fifo", checkpoint_every=2)


class TestMemoryAccounting:
    def test_memory_measured_on_demand(self, paper_network):
        unmeasured = run(dataset=paper_network, policy="fifo")
        measured = run(dataset=paper_network, policy="fifo", measure_memory=True)
        assert unmeasured.memory_bytes is None
        assert measured.memory_bytes > 0

    def test_ceiling_classifies_infeasible(self, small_network):
        result = run(
            dataset=small_network,
            policy="proportional-sparse",
            memory_ceiling_bytes=16,  # absurdly small: must be infeasible
        )
        assert not result.feasible
        assert result.memory_bytes > 16
        assert "exceeds the ceiling" in result.note

    def test_midrun_ceiling_aborts_early(self, small_network):
        result = run(
            dataset=small_network,
            policy="proportional-sparse",
            memory_ceiling_bytes=16,
            memory_check_every=10,
        )
        assert not result.feasible
        assert result.statistics.interactions < small_network.num_interactions


class TestConfigValidation:
    def test_negative_batch_size_rejected(self):
        with pytest.raises(RunConfigurationError):
            RunConfig(batch_size=-1)

    def test_bad_shard_mode_rejected(self):
        with pytest.raises(RunConfigurationError):
            RunConfig(shards=2, shard_by="roulette")

    def test_bad_executor_rejected(self):
        with pytest.raises(RunConfigurationError):
            RunConfig(shards=2, shard_executor="carrier-pigeon")

    def test_stream_plus_shards_rejected(self):
        with pytest.raises(RunConfigurationError):
            RunConfig(dataset="x.csv", stream=True, shards=2)

    def test_observers_plus_shards_rejected(self):
        with pytest.raises(RunConfigurationError):
            RunConfig(shards=2, observers=[lambda *a: None])

    def test_stream_with_network_rejected(self):
        network = TemporalInteractionNetwork.from_interactions(
            [Interaction("a", "b", 1.0, 1.0)]
        )
        with pytest.raises(RunConfigurationError):
            RunConfig(dataset=network, stream=True)


class TestRunResultQueries:
    def test_top_buffers_sorted(self, tiny_taxis_network):
        result = run(dataset=tiny_taxis_network, policy="fifo")
        top = result.top_buffers(5)
        totals = [total for _vertex, total in top]
        assert totals == sorted(totals, reverse=True)
        assert len(top) == 5

    def test_snapshot_matches_engine(self, paper_network):
        result = run(dataset=paper_network, policy="fifo")
        snapshot = result.snapshot()
        assert set(snapshot) == {"v0", "v1", "v2"}
        assert snapshot.total_quantity() == pytest.approx(9)

    def test_noprov_instance(self, paper_network):
        result = run(dataset=paper_network, policy=NoProvenancePolicy())
        assert len(result.origins("v0")) == 0
        assert result.buffer_total("v0") == pytest.approx(3)
