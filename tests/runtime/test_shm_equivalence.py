"""Acceptance suite of the shared-memory shard fabric.

The equivalence bar: a sharded run dispatched over shared segments and the
persistent worker pool (``shared_memory=True``) must produce origin sets,
buffer totals and entry counts identical — float for float — to the serial
executor and to the pickled process executor, for EVERY registered policy,
on the dict store and on the dense store (whose matrices additionally ride
the zero-copy state-adoption path back to the parent).  On top of
equivalence: no segment may survive a completed run, a crashed worker must
not leak segments or wedge the pool, and the dispatch payload must be small
compared to the pickled shard payload.
"""

from __future__ import annotations

import glob
import os
import tempfile

import numpy as np
import pytest

from repro.datasets.catalog import load_preset
from repro.exceptions import RunConfigurationError
from repro.policies.no_provenance import NoProvenancePolicy
from repro.policies.registry import available_policies, make_policy
from repro.runtime import RunConfig, Runner, fork_payload_bytes, partition_network, run_shards
from repro.runtime import shm as shm_mod
from repro.stores import StoreSpec
from repro.stores.dense import DenseNumpyStore

#: Structural parameters for the policies whose constructors require them.
STRUCTURAL_OPTIONS = {
    "proportional-budget": {"capacity": 20},
    "proportional-windowed": {"window": 150},
    "proportional-time-windowed": {"window": 50.0},
}

#: The dense backend applies to fixed-dimension vector roles and falls back
#: to dicts elsewhere, so it is safe for every policy; on proportional-dense
#: it exercises the zero-copy matrix adoption path.
STORES = {
    "dict": None,
    "dense": StoreSpec("dense"),
}


class CrashPolicy(NoProvenancePolicy):
    """A policy that kills its worker process mid-run (crash simulation)."""

    name = "crash"

    def process(self, interaction):  # pragma: no cover - exits the process
        os._exit(17)

    def process_many(self, interactions):  # pragma: no cover
        os._exit(17)

    def process_block(self, block):  # pragma: no cover
        os._exit(17)


class ExplodingPolicy(NoProvenancePolicy):
    """A policy that raises a plain exception inside the worker."""

    name = "exploding"

    def process(self, interaction):
        raise RuntimeError("exploding policy")

    def process_many(self, interactions):
        raise RuntimeError("exploding policy")

    def process_block(self, block):
        raise RuntimeError("exploding policy")


@pytest.fixture(scope="module")
def network():
    return load_preset("taxis", scale=0.05)


def our_segment_names():
    """Leftover fabric segments of THIS process, across both backends."""
    prefix = f"rp{os.getpid():x}x"
    leftovers = []
    if os.path.isdir("/dev/shm"):
        leftovers += [n for n in os.listdir("/dev/shm") if n.startswith(prefix)]
    leftovers += [
        os.path.basename(p)
        for p in glob.glob(os.path.join(tempfile.gettempdir(), prefix + "*"))
    ]
    return leftovers


def run_config(network, policy_name, store, **extra):
    return RunConfig(
        dataset=network,
        policy=policy_name,
        policy_options=STRUCTURAL_OPTIONS.get(policy_name, {}),
        store=STORES[store],
        shards=3,
        shard_by="hash",
        **extra,
    )


def snapshot_dict(result):
    snapshot = result.snapshot()
    return {vertex: snapshot[vertex].as_dict() for vertex in snapshot}


def assert_equivalent(reference, fabric):
    assert reference.statistics.interactions == fabric.statistics.interactions
    assert snapshot_dict(reference) == snapshot_dict(fabric)
    assert dict(reference.buffer_totals()) == dict(fabric.buffer_totals())
    assert (
        reference.statistics.final_entry_count
        == fabric.statistics.final_entry_count
    )
    assert reference.statistics.peak_entry_count == fabric.statistics.peak_entry_count


# ----------------------------------------------------------------------
# equivalence: every policy x dict/dense stores, three executors
# ----------------------------------------------------------------------
@pytest.mark.parametrize("store", sorted(STORES))
@pytest.mark.parametrize("policy_name", available_policies())
def test_shm_identical_to_serial_and_pickled(network, policy_name, store):
    serial = Runner(run_config(network, policy_name, store)).run()
    pickled = Runner(
        run_config(network, policy_name, store, shard_executor="processes")
    ).run()
    fabric = Runner(
        run_config(
            network, policy_name, store,
            shard_executor="processes", shared_memory=True,
        )
    ).run()
    assert_equivalent(serial, fabric)
    assert_equivalent(pickled, fabric)
    assert fabric.shm_stats is not None
    assert fabric.shm_stats["dispatch_bytes"] > 0
    assert our_segment_names() == []


def test_per_shard_statistics_match_pickled(network):
    """Sampling positions and per-shard peaks line up across transports."""
    pickled = Runner(
        run_config(
            network, "fifo", "dict", shard_executor="processes", sample_every=97
        )
    ).run()
    fabric = Runner(
        run_config(
            network, "fifo", "dict",
            shard_executor="processes", shared_memory=True, sample_every=97,
        )
    ).run()
    for a, b in zip(pickled.shard_runs, fabric.shard_runs):
        assert a.statistics.interactions == b.statistics.interactions
        assert a.statistics.samples == b.statistics.samples
        assert a.statistics.sampled_entry_counts == b.statistics.sampled_entry_counts
        assert a.statistics.final_entry_count == b.statistics.final_entry_count
        assert a.statistics.peak_entry_count == b.statistics.peak_entry_count


def test_limit_applies_before_sharding(network):
    limit = network.num_interactions // 3
    serial = Runner(run_config(network, "noprov", "dict", limit=limit)).run()
    fabric = Runner(
        run_config(
            network, "noprov", "dict", limit=limit,
            shard_executor="processes", shared_memory=True,
        )
    ).run()
    assert fabric.statistics.interactions == limit
    assert_equivalent(serial, fabric)


def test_mmap_fallback_equivalent(network, monkeypatch):
    """The mmap-file backend carries the whole fabric where shm is absent."""
    monkeypatch.setattr(shm_mod, "_FORCED_KIND", "mmap")
    serial = Runner(run_config(network, "proportional-dense", "dense")).run()
    fabric = Runner(
        run_config(
            network, "proportional-dense", "dense",
            shard_executor="processes", shared_memory=True,
        )
    ).run()
    assert fabric.shm_stats["backend"] == "mmap"
    assert_equivalent(serial, fabric)
    assert our_segment_names() == []


def test_run_shards_shared_memory_api(network):
    """Direct run_shards(shared_memory=True) works without a network block."""
    plan = partition_network(network, 2, mode="hash")
    serial_plan = partition_network(network, 2, mode="hash")
    policies = [make_policy("fifo") for _ in plan.shards]
    serial_policies = [make_policy("fifo") for _ in serial_plan.shards]
    runs, merged = run_shards(
        plan, policies, batch_size=256, executor="processes", shared_memory=True
    )
    serial_runs, serial_merged = run_shards(
        serial_plan, serial_policies, batch_size=256, executor="serial"
    )
    assert merged.interactions == serial_merged.interactions
    assert merged.final_entry_count == serial_merged.final_entry_count
    for a, b in zip(serial_runs, runs):
        totals_a = {v: a.policy.buffer_total(v) for v in a.policy.tracked_vertices()}
        totals_b = {v: b.policy.buffer_total(v) for v in b.policy.tracked_vertices()}
        assert totals_a == totals_b
    assert our_segment_names() == []


def test_shared_memory_requires_process_executor(network):
    with pytest.raises(RunConfigurationError):
        run_shards(
            partition_network(network, 2, mode="hash"),
            [make_policy("fifo"), make_policy("fifo")],
            executor="serial",
            shared_memory=True,
        )
    with pytest.raises(RunConfigurationError):
        RunConfig(dataset=network, policy="fifo", shards=2, shared_memory=True)
    with pytest.raises(RunConfigurationError):
        RunConfig(dataset=network, policy="fifo", shared_memory=True)
    # The fabric is inherently block-native; an explicit columnar=False
    # request cannot be honoured and must fail loudly.
    with pytest.raises(RunConfigurationError):
        RunConfig(
            dataset=network, policy="fifo", shards=2,
            shard_executor="processes", shared_memory=True, columnar=False,
        )


# ----------------------------------------------------------------------
# segment hygiene
# ----------------------------------------------------------------------
def test_no_segments_survive_a_normal_run(network):
    result = Runner(
        run_config(
            network, "proportional-dense", "dense",
            shard_executor="processes", shared_memory=True,
        )
    ).run()
    # The run completed AND adopted zero-copy dense state...
    assert result.shm_stats["state_bytes"] > 0
    # ...yet no named segment survives, on either backend, and the parent's
    # cleanup registry is empty.
    assert our_segment_names() == []
    assert shm_mod.active_segments() == []
    # Adopted state is still fully queryable after the segments were
    # unlinked (the lease keeps the mapping alive).
    top = result.top_buffers(3)
    assert top and all(total > 0 for _vertex, total in top)


def test_worker_crash_cleans_segments_and_pool_recovers(network):
    with pytest.raises(shm_mod.WorkerCrashedError):
        Runner(
            RunConfig(
                dataset=network,
                policy=CrashPolicy(),
                shards=2,
                shard_by="hash",
                shard_executor="processes",
                shared_memory=True,
            )
        ).run()
    assert our_segment_names() == []
    assert shm_mod.active_segments() == []
    # The pool replaces the dead worker transparently on the next run.
    recovered = Runner(
        run_config(
            network, "noprov", "dict",
            shard_executor="processes", shared_memory=True,
        )
    ).run()
    assert recovered.statistics.interactions == network.num_interactions
    assert our_segment_names() == []


def test_remote_exception_propagates_and_cleans_up(network):
    """An in-task exception (not a crash) surfaces without leaking."""
    plan = partition_network(network, 2, mode="hash")
    policies = [ExplodingPolicy() for _ in plan.shards]
    with pytest.raises(RuntimeError, match="exploding policy") as excinfo:
        run_shards(
            plan, policies, batch_size=256, executor="processes", shared_memory=True
        )
    assert not isinstance(excinfo.value, shm_mod.WorkerCrashedError)
    assert our_segment_names() == []


# ----------------------------------------------------------------------
# payload accounting
# ----------------------------------------------------------------------
def test_dispatch_is_far_smaller_than_pickled_payload(network):
    config = run_config(
        network, "fifo", "dict", shard_executor="processes", shared_memory=True
    )
    result = Runner(config).run()
    plan = partition_network(network, 3, mode="hash", block=network.to_block())
    pickled_bytes = fork_payload_bytes(
        plan,
        [make_policy("fifo") for _ in plan.shards],
        batch_size=config.effective_batch_size,
    )
    dispatched = result.shm_stats["dispatch_bytes"]
    # Even on this tiny test network the handle dispatch is an order of
    # magnitude smaller; the bench asserts the >=100x bar at full scale.
    assert dispatched * 5 < pickled_bytes


# ----------------------------------------------------------------------
# fabric primitives
# ----------------------------------------------------------------------
def test_dense_store_pack_adopt_round_trip():
    source = DenseNumpyStore(4, block_rows=2)
    for key in ("a", "b", "c"):
        source.merge(key, np.arange(4, dtype=np.float64) + ord(key))
    source.evict("b")  # leave a free-list hole; packing must compact it
    packed = np.empty((len(source), 4), dtype=np.float64)
    keys = source.pack_rows(packed)
    target = DenseNumpyStore(4)
    target.adopt_packed(keys, packed)
    assert set(target.keys()) == {"a", "c"}
    assert np.array_equal(target.get("a"), np.arange(4, dtype=np.float64) + ord("a"))
    # Adoption installs the packed matrix *as the arena* — an O(1) pointer
    # swap, so reads and writes are zero-copy views of the packed buffer.
    assert target.arena is packed
    target.get("a")[0] = 123.0
    assert packed[keys.index("a")][0] == 123.0
    # Growth past the adopted rows reallocates onto the heap (one memcpy);
    # the packed buffer is left untouched from that point on.
    target.merge("d", np.ones(4))
    assert target.arena is not packed
    assert np.array_equal(target.get("d"), np.ones(4))
    assert np.array_equal(target.get("c"), np.arange(4, dtype=np.float64) + ord("c"))
    assert packed[keys.index("a")][0] == 123.0  # detached, not mutated further
    # Eviction recycles rows through the free list like local ones.
    target.evict("c")
    target.merge("e", np.full(4, 2.0))
    assert np.array_equal(target.get("e"), np.full(4, 2.0))
    assert set(target.keys()) == {"a", "d", "e"}


def test_dense_store_adopt_without_growth_stays_zero_copy():
    """A worker that only reads/mutates adopted rows never copies them."""
    packed = np.arange(8, dtype=np.float64).reshape(2, 4)
    store = DenseNumpyStore(4)
    store.adopt_packed(["x", "y"], packed, owner="lease-token")
    assert store.arena is packed
    store.merge("x", np.ones(4))  # existing row: no growth, in-place
    assert store.arena is packed
    assert np.array_equal(packed[0], np.arange(4, dtype=np.float64) + 1.0)
    # Repacking for the next hop gathers straight from the adopted buffer.
    out = np.empty((2, 4), dtype=np.float64)
    assert store.pack_rows(out) == ["x", "y"]
    assert np.array_equal(out, packed)


def test_plan_segment_round_trip(network):
    """build_shared_plan -> attach_block reproduces every shard bit for bit.

    Covers both parent-side sources: a blockless plan routed from the
    network block (positions fancy-indexed straight into the segment, the
    plan gaining pool-resident views) and a plan whose shards already
    carry routed blocks (column-wise copy, no membership recomputation).
    """
    block = network.to_block()
    routed = partition_network(network, 3, mode="hash", block=block)
    reference = [shard.block for shard in routed.shards]
    for source_plan, source_block in (
        (partition_network(network, 3, mode="hash"), block),  # positions path
        (routed, None),  # pre-routed shard blocks path
    ):
        segment, handle = shm_mod.build_shared_plan(source_plan, source_block)
        try:
            attached = shm_mod._AttachedPlan(handle)
            assert attached.table == block.interner.vertices
            for index, shard in enumerate(source_plan.shards):
                view = shm_mod.attach_block(attached, handle.blocks[index])
                assert np.array_equal(view.src_ids, reference[index].src_ids)
                assert np.array_equal(view.dst_ids, reference[index].dst_ids)
                assert np.array_equal(view.times, reference[index].times)
                assert np.array_equal(view.quantities, reference[index].quantities)
                assert not view.src_ids.flags.writeable
                if source_block is not None:
                    # Positions routing hands the plan pool-resident views.
                    assert shard.block.owner is not None
            attached.segment.close_quietly()
        finally:
            segment.unlink()
            segment.close_quietly()
    assert our_segment_names() == []
