"""RunConfig validation and Runner wiring of the streaming knobs."""

from __future__ import annotations

import pytest

from repro.core.interaction import Interaction
from repro.datasets.catalog import load_preset
from repro.exceptions import RunConfigurationError
from repro.runtime import RunConfig, Runner
from repro.sources import SequenceSource


def make_source():
    return SequenceSource([Interaction("a", "b", 1.0, 1.0)])


class TestValidation:
    def test_rejects_bad_micro_batch(self):
        with pytest.raises(RunConfigurationError):
            RunConfig(micro_batch=0)

    def test_rejects_bad_max_in_flight(self):
        with pytest.raises(RunConfigurationError):
            RunConfig(max_in_flight=0)

    def test_rejects_bad_flush_interval(self):
        with pytest.raises(RunConfigurationError):
            RunConfig(flush_interval=0)

    def test_rejects_bad_idle_timeout(self):
        with pytest.raises(RunConfigurationError):
            RunConfig(dataset="feed.csv", follow=True, idle_timeout=-1)

    def test_idle_timeout_requires_follow(self):
        # It would otherwise be silently ignored (only the Runner-built
        # tailing source consumes it).
        with pytest.raises(RunConfigurationError):
            RunConfig(dataset="feed.csv", stream=True, idle_timeout=5)
        with pytest.raises(RunConfigurationError):
            RunConfig(source=make_source(), idle_timeout=5)

    def test_follow_needs_a_path_dataset(self):
        with pytest.raises(RunConfigurationError):
            RunConfig(dataset=load_preset("taxis", scale=0.02), follow=True)

    def test_follow_conflicts_with_stream(self):
        with pytest.raises(RunConfigurationError):
            RunConfig(dataset="feed.csv", follow=True, stream=True)

    def test_follow_conflicts_with_explicit_source(self):
        with pytest.raises(RunConfigurationError):
            RunConfig(dataset="feed.csv", source=make_source(), follow=True)

    def test_source_conflicts_with_stream(self):
        with pytest.raises(RunConfigurationError):
            RunConfig(source=make_source(), stream=True)
        with pytest.raises(RunConfigurationError):
            RunConfig(dataset=make_source(), stream=True)

    def test_sharding_rejects_scheduler_knobs(self):
        # They would otherwise be silently dropped (shards batch per shard
        # via batch_size).
        for knob in ({"micro_batch": 7}, {"max_in_flight": 64},
                     {"flush_interval": 0.5}):
            with pytest.raises(RunConfigurationError):
                RunConfig(dataset="taxis", shards=2, **knob)

    def test_sharding_rejects_streaming_sources(self):
        with pytest.raises(RunConfigurationError):
            RunConfig(source=make_source(), shards=2)
        with pytest.raises(RunConfigurationError):
            RunConfig(dataset="feed.csv", follow=True, shards=2)
        with pytest.raises(RunConfigurationError):
            RunConfig(dataset="taxis", resume_from="x.ckpt", shards=2)

    def test_follow_on_preset_rejected_at_resolution(self):
        runner = Runner(RunConfig(dataset="taxis", follow=True))
        with pytest.raises(RunConfigurationError):
            runner.resolve_dataset()


class TestSchedulerWiring:
    def test_scheduler_knobs_engage_the_explicit_scheduler(self):
        assert RunConfig(micro_batch=32).uses_scheduler
        assert RunConfig(max_in_flight=64).uses_scheduler
        assert RunConfig(flush_interval=0.5).uses_scheduler
        assert RunConfig(source=make_source()).uses_scheduler
        assert RunConfig(dataset="x.csv", follow=True).uses_scheduler
        assert not RunConfig().uses_scheduler

    def test_effective_micro_batch_defaults_to_batch_size(self):
        assert RunConfig(batch_size=128).effective_micro_batch == 128
        assert RunConfig(micro_batch=32, batch_size=128).effective_micro_batch == 32
        # per-interaction batch sizes still get a sensible scheduler default
        assert RunConfig(batch_size=1).effective_micro_batch > 1

    def test_checkpoint_every_keeps_batching_on_scheduled_runs(self):
        eager = RunConfig(dataset="taxis", checkpoint_every=10, checkpoint_path="x")
        assert eager.effective_batch_size == 1  # historical observer path
        scheduled = RunConfig(
            dataset="taxis", micro_batch=64, checkpoint_every=10, checkpoint_path="x"
        )
        assert scheduled.effective_batch_size == scheduled.batch_size

    def test_source_dataset_yields_source_arm(self):
        source = make_source()
        network, stream = Runner(RunConfig(source=source)).resolve_dataset()
        assert network is None and stream is source

    def test_source_as_dataset_positional(self):
        source = make_source()
        network, stream = Runner(RunConfig(dataset=source)).resolve_dataset()
        assert network is None and stream is source

    def test_raw_iterable_still_streams(self):
        interactions = [Interaction("a", "b", 1.0, 1.0)]
        result = Runner(RunConfig(dataset=interactions, policy="fifo")).run()
        assert result.statistics.interactions == 1

    def test_scheduler_stats_absent_on_per_interaction_runs(self):
        network = load_preset("taxis", scale=0.02)
        result = Runner(RunConfig(dataset=network, policy="fifo", batch_size=1)).run()
        assert result.scheduler_stats is None
        document = result.to_dict()
        assert document["streaming"]["scheduled"] is False

    def test_runner_closes_the_tail_source_it_built(self, tmp_path):
        # A follow run that ends via limit (before source exhaustion) must
        # release the tailed file handle promptly, not wait for GC.
        from repro.datasets.io import write_interactions_csv

        path = tmp_path / "feed.csv"
        write_interactions_csv(
            [Interaction("a", "b", float(t), 1.0) for t in range(10)], path
        )
        result = Runner(RunConfig(
            dataset=path, follow=True, idle_timeout=5.0, policy="fifo",
            micro_batch=4, limit=3,
        )).run()
        assert result.statistics.interactions == 3
        # resolve the source the Runner used: exhausted == handle released
        # (close() routes through _finish)
        # A fresh runner re-resolves, so inspect indirectly: the file can be
        # unlinked on every platform once no handle is open.
        path.unlink()

    def test_runner_leaves_caller_sources_open(self):
        source = SequenceSource(
            [Interaction("a", "b", float(t), 1.0) for t in range(10)]
        )
        closed = []
        original_close = source.close
        source.close = lambda: (closed.append(True), original_close())
        Runner(RunConfig(source=source, policy="fifo", limit=3)).run()
        assert not closed  # the caller owns the source's lifecycle

    def test_limit_does_not_overconsume_caller_sources(self):
        # Scheduler read-ahead must stop at the limit: the rest of a
        # caller's source stays available for continuation.
        source = SequenceSource(
            [Interaction("a", "b", float(t), 1.0) for t in range(500)]
        )
        result = Runner(RunConfig(
            source=source, policy="fifo", limit=100, micro_batch=64
        )).run()
        assert result.statistics.interactions == 100
        assert len(source.poll(1000)) == 400  # nothing consumed past the limit

    def test_resume_skip_does_not_overconsume_the_source(self, tmp_path):
        # _drain_source must poll exactly the checkpointed offset, not a
        # whole iteration chunk: everything after the offset is processed.
        from repro.core.checkpoint import save_engine
        from repro.core.engine import ProvenanceEngine
        from repro.policies.registry import make_policy

        interactions = [Interaction("a", "b", float(t), 1.0) for t in range(50)]
        checkpoint = tmp_path / "offset5.ckpt"
        engine = ProvenanceEngine(make_policy("fifo"))
        engine.run(interactions[:5], batch_size=4)
        save_engine(engine, checkpoint)

        resumed = Runner(RunConfig(
            source=SequenceSource(interactions),
            policy="fifo",
            resume_from=checkpoint,
            micro_batch=8,
        )).run()
        assert resumed.statistics.interactions == 45
        assert resumed.engine.interactions_processed == 50

    def test_runner_leaves_caller_generators_open(self):
        # A raw generator dataset may be continued after a limited run; the
        # Runner must not close it behind the caller's back.
        def feed():
            for t in range(10):
                yield Interaction("a", "b", float(t), 1.0)

        generator = feed()
        Runner(RunConfig(
            dataset=generator, policy="fifo", micro_batch=4, limit=3
        )).run()
        assert next(generator).time >= 3.0  # still alive, not closed

    def test_scheduler_stats_exported_in_to_dict(self):
        network = load_preset("taxis", scale=0.02)
        result = Runner(RunConfig(dataset=network, policy="fifo", micro_batch=32)).run()
        document = result.to_dict()
        assert document["streaming"]["scheduled"] is True
        assert document["streaming"]["scheduler"]["micro_batch"] == 32
