"""Chaos suite of the self-healing shard fabric.

The recovery bar: a run whose workers are killed by the deterministic
fault-injection harness (:mod:`repro.runtime.faults`) must produce origin
sets, buffer totals and entry counts identical — float for float — to the
same run without faults, for EVERY registered policy, on the dict store and
on the dense store, on both the batch fabric (``shared_memory=True``) and
the partitioned streaming fabric (``streaming_shards``).  On top of
bit-identity: a shard that deterministically crashes its worker every
attempt is quarantined with per-shard diagnostics, infrastructure failures
degrade down the executor ladder (shm -> pickled processes -> serial) when
allowed, torn checkpoints surface as a clear corruption error, and no
segment may survive any of it.
"""

from __future__ import annotations

import glob
import os
import pickle
import signal
import tempfile
import time

import pytest

from repro.core.checkpoint import read_checkpoint, save_checkpoint_state
from repro.datasets.catalog import load_preset
from repro.exceptions import CheckpointCorruptedError, SegmentAllocationError
from repro.policies.registry import available_policies
from repro.runtime import FaultPlan, RunConfig, Runner, fault_plan
from repro.runtime import shm as shm_mod
from repro.runtime.faults import FaultState, install, clear
from repro.stores import StoreSpec

#: Structural parameters for the policies whose constructors require them.
STRUCTURAL_OPTIONS = {
    "proportional-budget": {"capacity": 20},
    "proportional-windowed": {"window": 150},
    "proportional-time-windowed": {"window": 50.0},
}

STORES = {
    "dict": None,
    "dense": StoreSpec("dense"),
}


@pytest.fixture(scope="module")
def network():
    return load_preset("taxis", scale=0.05)


def our_segment_names():
    """Leftover fabric segments of THIS process, across both backends."""
    prefix = f"rp{os.getpid():x}x"
    leftovers = []
    if os.path.isdir("/dev/shm"):
        leftovers += [n for n in os.listdir("/dev/shm") if n.startswith(prefix)]
    leftovers += [
        os.path.basename(p)
        for p in glob.glob(os.path.join(tempfile.gettempdir(), prefix + "*"))
    ]
    return leftovers


def batch_config(network, policy_name, store, **extra):
    return RunConfig(
        dataset=network,
        policy=policy_name,
        policy_options=STRUCTURAL_OPTIONS.get(policy_name, {}),
        store=STORES[store],
        shards=3,
        shard_by="hash",
        shard_executor="processes",
        shared_memory=True,
        retry_backoff=0.0,
        **extra,
    )


def stream_config(network, policy_name, store, **extra):
    return RunConfig(
        dataset=network,
        policy=policy_name,
        policy_options=STRUCTURAL_OPTIONS.get(policy_name, {}),
        store=STORES[store],
        streaming_shards=3,
        shard_by="hash",
        retry_backoff=0.0,
        **extra,
    )


def serial_config(network, policy_name, store, **extra):
    return RunConfig(
        dataset=network,
        policy=policy_name,
        policy_options=STRUCTURAL_OPTIONS.get(policy_name, {}),
        store=STORES[store],
        shards=3,
        shard_by="hash",
        shard_executor="serial",
        **extra,
    )


def snapshot_dict(result):
    snapshot = result.snapshot()
    return {vertex: snapshot[vertex].as_dict() for vertex in snapshot}


def assert_equivalent(reference, recovered):
    assert reference.statistics.interactions == recovered.statistics.interactions
    assert snapshot_dict(reference) == snapshot_dict(recovered)
    assert dict(reference.buffer_totals()) == dict(recovered.buffer_totals())
    assert (
        reference.statistics.final_entry_count
        == recovered.statistics.final_entry_count
    )
    assert (
        reference.statistics.peak_entry_count
        == recovered.statistics.peak_entry_count
    )


# ----------------------------------------------------------------------
# batch fabric: kill a worker, recover, stay bit-identical to serial
# ----------------------------------------------------------------------
@pytest.mark.parametrize("store", sorted(STORES))
@pytest.mark.parametrize("policy_name", available_policies())
def test_batch_kill_recovery_identical_to_serial(network, policy_name, store):
    serial = Runner(serial_config(network, policy_name, store)).run()
    with fault_plan(FaultPlan(kill_shard=1)):
        recovered = Runner(batch_config(network, policy_name, store)).run()
    assert recovered.fault_stats is not None
    assert recovered.fault_stats["respawns"] >= 1
    assert recovered.fault_stats["retries"] >= 1
    assert_equivalent(serial, recovered)
    assert our_segment_names() == []


def test_batch_kill_at_task_ordinal(network):
    """kill-worker-at-task-N (ordinal based, not shard based) recovers."""
    serial = Runner(serial_config(network, "fifo", "dict")).run()
    with fault_plan(FaultPlan(kill_at_task=2)):
        recovered = Runner(batch_config(network, "fifo", "dict")).run()
    assert recovered.fault_stats["respawns"] >= 1
    assert_equivalent(serial, recovered)


def test_batch_delay_result_is_harmless(network):
    serial = Runner(serial_config(network, "fifo", "dict")).run()
    with fault_plan(FaultPlan(delay_result=0.05)):
        delayed = Runner(batch_config(network, "fifo", "dict")).run()
    # A delay alone respawns nothing, so a clean run reports no faults.
    assert delayed.fault_stats is None
    assert_equivalent(serial, delayed)


def test_deterministic_crasher_is_quarantined(network):
    """A shard whose work always kills its worker quarantines after the
    retry budget, with per-shard crash diagnostics, instead of respawning
    forever."""
    with fault_plan(FaultPlan(kill_shard=1, kill_times=100)):
        with pytest.raises(shm_mod.ShardQuarantinedError) as exc_info:
            Runner(batch_config(network, "fifo", "dict")).run()
    error = exc_info.value
    assert isinstance(error, shm_mod.WorkerCrashedError)  # subclass contract
    diagnostics = error.diagnostics
    # The crasher itself is always quarantined; on low-core machines shards
    # co-resident on its worker may exhaust their budget alongside it (their
    # completed replies keep dying with the shared worker).
    assert 1 in [diag["shard"] for diag in diagnostics]
    for diag in diagnostics:
        # default max_task_retries=1 -> 2 attempts, both logged
        assert diag["attempts"] == 2
        assert len(diag["crashes"]) == 2
        assert "exit code" in diag["crashes"][0]
    assert "shard 1" in str(error)
    assert our_segment_names() == []


def test_quarantine_never_degrades(network):
    """degradation='auto' must not re-run a quarantined shard on a slower
    executor — the crash is the work's, not the infrastructure's."""
    with fault_plan(FaultPlan(kill_shard=0, kill_times=100)):
        with pytest.raises(shm_mod.ShardQuarantinedError):
            Runner(batch_config(network, "fifo", "dict", degradation="auto")).run()


def test_retries_disabled_fails_like_before(network):
    with fault_plan(FaultPlan(kill_shard=1)):
        with pytest.raises(shm_mod.WorkerCrashedError):
            Runner(
                batch_config(
                    network, "fifo", "dict", max_task_retries=0, degradation="off"
                )
            ).run()
    assert our_segment_names() == []


# ----------------------------------------------------------------------
# degradation ladder
# ----------------------------------------------------------------------
def test_segment_alloc_failure_degrades_to_processes(network):
    serial = Runner(serial_config(network, "fifo", "dict")).run()
    with fault_plan(FaultPlan(fail_segment_alloc_at=1, fail_segment_alloc_times=10)):
        degraded = Runner(batch_config(network, "fifo", "dict")).run()
    rungs = degraded.fault_stats["degradations"]
    assert [(rung["from"], rung["to"]) for rung in rungs] == [
        ("shared-memory", "processes")
    ]
    assert "SegmentAllocationError" in rungs[0]["reason"]
    assert_equivalent(serial, degraded)
    assert our_segment_names() == []


def test_segment_alloc_failure_with_degradation_off_raises(network):
    with fault_plan(FaultPlan(fail_segment_alloc_at=1, fail_segment_alloc_times=10)):
        with pytest.raises(SegmentAllocationError):
            Runner(batch_config(network, "fifo", "dict", degradation="off")).run()
    assert our_segment_names() == []


def test_stream_alloc_failure_degrades_to_single_consumer(network):
    clean = Runner(stream_config(network, "fifo", "dict")).run()
    # Hash-routed streaming is approximate vs a single engine, so the
    # degraded run's contents compare against what it became: a clean
    # single-consumer run over the same network.
    single = Runner(RunConfig(dataset=network, policy="fifo")).run()
    with fault_plan(FaultPlan(fail_segment_alloc_at=1, fail_segment_alloc_times=1000)):
        degraded = Runner(stream_config(network, "fifo", "dict")).run()
    rungs = degraded.fault_stats["degradations"]
    assert [(rung["from"], rung["to"]) for rung in rungs] == [("shm-stream", "single")]
    assert degraded.statistics.interactions == clean.statistics.interactions
    assert dict(degraded.buffer_totals()) == dict(single.buffer_totals())
    assert snapshot_dict(degraded) == snapshot_dict(single)
    assert our_segment_names() == []


def test_stream_alloc_failure_with_degradation_off_raises(network):
    with fault_plan(FaultPlan(fail_segment_alloc_at=1, fail_segment_alloc_times=1000)):
        with pytest.raises(SegmentAllocationError):
            Runner(stream_config(network, "fifo", "dict", degradation="off")).run()
    assert our_segment_names() == []


# ----------------------------------------------------------------------
# streaming fabric: kill a worker mid-stream, replay, stay identical
# ----------------------------------------------------------------------
@pytest.mark.parametrize("store", sorted(STORES))
@pytest.mark.parametrize("policy_name", available_policies())
def test_stream_kill_recovery_identical(network, policy_name, store):
    clean = Runner(stream_config(network, policy_name, store)).run()
    with fault_plan(FaultPlan(kill_shard=1, kill_at_batch=2)):
        recovered = Runner(stream_config(network, policy_name, store)).run()
    assert recovered.fault_stats is not None
    assert recovered.fault_stats["respawns"] >= 1
    assert recovered.fault_stats["replayed_batches"] >= 1
    assert_equivalent(clean, recovered)
    assert our_segment_names() == []


def test_stream_kill_recovery_identical_to_eager_serial(network):
    """Transitively: recovered streaming == clean streaming == eager serial
    sharding; assert the long edge directly for one policy."""
    serial = Runner(serial_config(network, "fifo", "dict")).run()
    with fault_plan(FaultPlan(kill_shard=2, kill_at_batch=1)):
        recovered = Runner(stream_config(network, "fifo", "dict")).run()
    assert_equivalent(serial, recovered)


def test_stream_first_batch_kill_recovers(network):
    """A crash before ANY batch committed replays from the session open."""
    clean = Runner(stream_config(network, "lifo", "dict")).run()
    with fault_plan(FaultPlan(kill_shard=0, kill_at_batch=1)):
        recovered = Runner(stream_config(network, "lifo", "dict")).run()
    assert recovered.fault_stats["respawns"] >= 1
    assert_equivalent(clean, recovered)


def test_stream_deterministic_crasher_quarantined(network):
    with fault_plan(FaultPlan(kill_shard=1, kill_at_batch=1, kill_times=100)):
        with pytest.raises(shm_mod.ShardQuarantinedError) as exc_info:
            Runner(stream_config(network, "fifo", "dict")).run()
    diagnostics = exc_info.value.diagnostics
    # On a 1-CPU pool every shard shares the crashing worker, so co-resident
    # shards may exhaust their budgets alongside the injected crasher; the
    # crasher itself must be among the quarantined.
    assert 1 in [diag["shard"] for diag in diagnostics]
    for diag in diagnostics:
        assert diag["attempts"] == 2
    assert our_segment_names() == []


def test_stream_checkpoint_after_recovery_resumes_identically(network, tmp_path):
    """A checkpoint written AFTER a recovery carries the recovered state;
    resuming from it matches the uninterrupted run."""
    full = Runner(stream_config(network, "fifo", "dict")).run()
    ckpt = tmp_path / "stream.ckpt"
    with fault_plan(FaultPlan(kill_shard=1, kill_at_batch=1)):
        first = Runner(
            stream_config(
                network, "fifo", "dict", limit=600, checkpoint_path=str(ckpt)
            )
        ).run()
    assert first.fault_stats["respawns"] >= 1
    resumed = Runner(
        stream_config(network, "fifo", "dict", resume_from=str(ckpt))
    ).run()
    assert (
        first.statistics.interactions + resumed.statistics.interactions
        == full.statistics.interactions
    )
    assert snapshot_dict(resumed) == snapshot_dict(full)
    assert dict(resumed.buffer_totals()) == dict(full.buffer_totals())
    assert our_segment_names() == []


def test_stream_mid_checkpoint_kill_recovers(network, tmp_path):
    """Kills landing between periodic checkpoint barriers replay only the
    uncommitted suffix and stay bit-identical."""
    clean = Runner(stream_config(network, "fifo", "dict")).run()
    ckpt = tmp_path / "mid.ckpt"
    with fault_plan(FaultPlan(kill_shard=2, kill_at_batch=2)):
        recovered = Runner(
            stream_config(
                network,
                "fifo",
                "dict",
                checkpoint_every=400,
                checkpoint_path=str(ckpt),
            )
        ).run()
    assert recovered.fault_stats["respawns"] >= 1
    assert_equivalent(clean, recovered)


# ----------------------------------------------------------------------
# fault_stats surface
# ----------------------------------------------------------------------
def test_clean_run_reports_no_fault_stats(network):
    result = Runner(batch_config(network, "fifo", "dict")).run()
    assert result.fault_stats is None
    assert result.to_dict()["faults"] is None


def test_fault_stats_in_json_export(network):
    with fault_plan(FaultPlan(kill_shard=1)):
        result = Runner(batch_config(network, "fifo", "dict")).run()
    document = result.to_dict()
    assert document["faults"]["respawns"] >= 1
    assert document["faults"]["retries"] >= 1
    assert "recovery_seconds" in document["faults"]
    result.to_json()  # must stay JSON-serialisable


# ----------------------------------------------------------------------
# deterministic harness semantics
# ----------------------------------------------------------------------
def test_fault_plan_is_deterministic(network):
    """Two runs under the same plan fire the same faults and converge to
    the same provenance.  (Retry counts can differ by result-queue flush
    timing — a completed task's reply may or may not outrun the kill — so
    determinism is asserted on the fired faults and the outcome.)"""
    outcomes = []
    for _ in range(2):
        with fault_plan(FaultPlan(kill_shard=1)):
            result = Runner(batch_config(network, "fifo", "dict")).run()
        assert result.fault_stats["respawns"] == 1
        outcomes.append(snapshot_dict(result))
    assert outcomes[0] == outcomes[1]


def test_fault_plan_clears_on_exit(network):
    from repro.runtime import faults

    with fault_plan(FaultPlan(kill_shard=1)):
        assert faults.active() is not None
    assert faults.active() is None
    result = Runner(batch_config(network, "fifo", "dict")).run()
    assert result.fault_stats is None


def test_install_and_clear_counters():
    state = install(FaultPlan(kill_at_task=3, delay_result=0.0))
    try:
        assert isinstance(state, FaultState)
        from repro.runtime import faults

        assert faults.task_directive(0) is None
        assert faults.task_directive(0) is None
        assert faults.task_directive(5) == ("kill",)
        assert faults.task_directive(5) is None  # kill_times exhausted
    finally:
        clear()


# ----------------------------------------------------------------------
# checkpoint atomicity and corruption
# ----------------------------------------------------------------------
def test_torn_checkpoint_read_raises_clean_error(network, tmp_path):
    ckpt = tmp_path / "torn.ckpt"
    with fault_plan(FaultPlan(torn_checkpoint_at=1)):
        Runner(
            RunConfig(
                dataset=network, policy="fifo", checkpoint_path=str(ckpt)
            )
        ).run()
    with pytest.raises(CheckpointCorruptedError) as exc_info:
        read_checkpoint(ckpt)
    message = str(exc_info.value)
    assert str(ckpt) in message
    assert "--resume-from" in message  # actionable hint


def test_checkpoint_write_is_atomic(tmp_path):
    """A checkpoint overwrite leaves no temp siblings and the reread value
    is exactly what was written."""
    path = tmp_path / "state.ckpt"
    save_checkpoint_state({"kind": "t", "value": 1}, path)
    save_checkpoint_state({"kind": "t", "value": 2}, path)
    assert read_checkpoint(path)["value"] == 2
    leftovers = [p for p in os.listdir(tmp_path) if p != "state.ckpt"]
    assert leftovers == []


def test_truncated_checkpoint_raises_corruption_error(tmp_path):
    path = tmp_path / "trunc.ckpt"
    save_checkpoint_state({"kind": "t", "value": list(range(1000))}, path)
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])
    with pytest.raises(CheckpointCorruptedError):
        read_checkpoint(path)


def test_garbage_checkpoint_raises_corruption_error(tmp_path):
    path = tmp_path / "garbage.ckpt"
    path.write_bytes(b"this is not a pickle at all")
    with pytest.raises(CheckpointCorruptedError):
        read_checkpoint(path)


def test_non_dict_checkpoint_still_type_errors(tmp_path):
    path = tmp_path / "notdict.ckpt"
    path.write_bytes(pickle.dumps([1, 2, 3]))
    with pytest.raises(TypeError):
        read_checkpoint(path)


# ----------------------------------------------------------------------
# pool shutdown escalation
# ----------------------------------------------------------------------
def test_pool_close_escalates_past_stopped_worker():
    """A SIGSTOP'd worker ignores the stop message and join(); close()
    must escalate to terminate/kill instead of hanging."""
    pool = shm_mod.ShardWorkerPool()
    pool.ensure_workers(1)
    process = pool._workers[0][0]
    os.kill(process.pid, signal.SIGSTOP)
    try:
        started = time.perf_counter()
        pool.close(join_timeout=0.2)
        elapsed = time.perf_counter() - started
    finally:
        # If escalation failed, unfreeze so the test process can exit.
        try:
            os.kill(process.pid, signal.SIGCONT)
        except ProcessLookupError:
            pass
    assert not process.is_alive()
    assert elapsed < 5.0
