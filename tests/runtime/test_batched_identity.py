"""Batched execution must reproduce per-interaction provenance exactly.

The acceptance bar of the Runner refactor: for EVERY registered policy, a
batched run (``process_many`` driven) produces origin sets identical — not
approximately, identically, float for float — to the per-interaction run on
the synthetic presets.
"""

from __future__ import annotations

import pytest

from repro.datasets.catalog import load_preset
from repro.policies.registry import available_policies
from repro.runtime import RunConfig, Runner


@pytest.fixture(scope="module")
def preset_network():
    return load_preset("taxis", scale=0.05)


#: Structural parameters for the policies whose constructors require them.
STRUCTURAL_OPTIONS = {
    "proportional-budget": {"capacity": 20},
    "proportional-windowed": {"window": 150},
    "proportional-time-windowed": {"window": 50.0},
}


def _snapshot_dict(result):
    snapshot = result.snapshot()
    return {vertex: snapshot[vertex].as_dict() for vertex in snapshot}


def _run(network, policy_name, batch_size, **extra):
    config = RunConfig(
        dataset=network,
        policy=policy_name,
        policy_options=STRUCTURAL_OPTIONS.get(policy_name, {}),
        batch_size=batch_size,
        **extra,
    )
    return Runner(config).run()


@pytest.mark.parametrize("policy_name", available_policies())
def test_batched_identical_to_per_interaction(preset_network, policy_name):
    per_item = _run(preset_network, policy_name, 1)
    batched = _run(preset_network, policy_name, 64)
    assert per_item.statistics.interactions == batched.statistics.interactions
    assert _snapshot_dict(per_item) == _snapshot_dict(batched)


@pytest.mark.parametrize("policy_name", available_policies())
def test_batched_identical_with_sampling(preset_network, policy_name):
    per_item = _run(preset_network, policy_name, 1, sample_every=100)
    batched = _run(preset_network, policy_name, 97, sample_every=100)  # misaligned on purpose
    assert per_item.statistics.samples == batched.statistics.samples
    assert (
        per_item.statistics.sampled_entry_counts
        == batched.statistics.sampled_entry_counts
    )
    assert _snapshot_dict(per_item) == _snapshot_dict(batched)


@pytest.mark.parametrize("dataset", ["prosper", "flights"])
def test_batched_identical_on_more_presets(dataset):
    network = load_preset(dataset, scale=0.02)
    for policy_name in ("noprov", "proportional-dense", "proportional-sparse"):
        per_item = _run(network, policy_name, 1)
        batched = _run(network, policy_name, 256)
        assert _snapshot_dict(per_item) == _snapshot_dict(batched), policy_name
        totals_a = per_item.buffer_totals()
        totals_b = batched.buffer_totals()
        assert totals_a == totals_b, policy_name
