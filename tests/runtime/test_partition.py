"""Unit tests for vertex partitioning and sharded runs."""

from __future__ import annotations

import math

import pytest

from repro.core.interaction import Interaction
from repro.core.network import TemporalInteractionNetwork
from repro.exceptions import RunConfigurationError
from repro.policies.receipt_order import FifoPolicy
from repro.runtime import (
    connected_components,
    merge_statistics,
    partition_network,
    run,
    run_shards,
    stable_shard_index,
)
from repro.core.engine import RunStatistics


def _component_network(num_components: int = 6, chain: int = 4):
    """Disjoint chains: component c is c0 -> c1 -> ... -> c{chain}."""
    interactions = []
    for component in range(num_components):
        for step in range(chain):
            interactions.append(
                Interaction(
                    f"c{component}n{step}",
                    f"c{component}n{step + 1}",
                    float(step) + component / 100.0,
                    2.0 + step,
                )
            )
    interactions.sort(key=lambda i: i.time)
    return TemporalInteractionNetwork.from_interactions(interactions, name="chains")


class TestConnectedComponents:
    def test_disjoint_chains(self):
        network = _component_network(num_components=5, chain=3)
        components = connected_components(network)
        assert len(components) == 5
        assert all(len(component) == 4 for component in components)

    def test_single_component(self, paper_network):
        assert len(connected_components(paper_network)) == 1

    def test_isolated_vertices_are_singletons(self):
        network = TemporalInteractionNetwork.from_interactions(
            [Interaction("a", "b", 1.0, 1.0)], vertices=["lonely"]
        )
        components = connected_components(network)
        assert {frozenset(c) for c in components} == {
            frozenset({"a", "b"}),
            frozenset({"lonely"}),
        }


class TestPartitionNetwork:
    def test_component_partition_covers_everything(self):
        network = _component_network()
        plan = partition_network(network, 3)
        assert plan.exact
        assert plan.cross_shard_interactions == 0
        all_vertices = [v for shard in plan.shards for v in shard.vertices]
        assert sorted(all_vertices) == sorted(network.vertices)
        assert sum(s.num_interactions for s in plan.shards) == network.num_interactions

    def test_component_partition_balances_interactions(self):
        network = _component_network(num_components=6, chain=4)
        plan = partition_network(network, 3)
        sizes = sorted(shard.num_interactions for shard in plan.shards)
        assert sizes == [8, 8, 8]  # 6 equal components over 3 shards

    def test_more_shards_than_components_collapses(self, paper_network):
        plan = partition_network(paper_network, 4)
        assert len(plan.shards) == 1  # one giant component

    def test_hash_partition_is_deterministic(self):
        network = _component_network()
        plan_a = partition_network(network, 4, mode="hash")
        plan_b = partition_network(network, 4, mode="hash")
        assert [s.vertices for s in plan_a.shards] == [s.vertices for s in plan_b.shards]
        assert not plan_a.exact

    def test_hash_partition_counts_cross_edges(self, tiny_taxis_network):
        plan = partition_network(tiny_taxis_network, 4, mode="hash")
        assert plan.cross_shard_interactions > 0
        assert sum(s.num_interactions for s in plan.shards) == (
            tiny_taxis_network.num_interactions
        )

    def test_stable_shard_index_range(self):
        for vertex in ("a", 7, ("tuple", 1)):
            assert 0 <= stable_shard_index(vertex, 5) < 5

    def test_zero_shards_rejected(self, paper_network):
        with pytest.raises(RunConfigurationError):
            partition_network(paper_network, 0)

    def test_unknown_mode_rejected(self, paper_network):
        with pytest.raises(RunConfigurationError):
            partition_network(paper_network, 2, mode="astrology")


class TestShardedRuns:
    @pytest.mark.parametrize("executor", ["serial", "threads", "processes"])
    def test_component_sharding_is_exact(self, executor):
        network = _component_network()
        baseline = run(dataset=network, policy="proportional-sparse")
        sharded = run(
            dataset=network,
            policy="proportional-sparse",
            shards=3,
            shard_executor=executor,
        )
        assert sharded.statistics.interactions == baseline.statistics.interactions
        base_snapshot = baseline.snapshot()
        shard_snapshot = sharded.snapshot()
        assert set(base_snapshot) == set(shard_snapshot)
        for vertex in base_snapshot:
            assert base_snapshot[vertex].as_dict() == shard_snapshot[vertex].as_dict()

    def test_dense_policy_gets_shard_universe(self):
        network = _component_network(num_components=4, chain=3)
        sharded = run(dataset=network, policy="proportional-dense", shards=4)
        # Each shard's dense vectors span only that shard's vertices, so the
        # allocated-cell count is far below touched_vertices * |V|.
        per_shard_universe = {
            len(shard_run.shard.vertices) for shard_run in sharded.shard_runs
        }
        assert per_shard_universe == {4}
        baseline = run(dataset=network, policy="proportional-dense")
        assert sharded.buffer_totals() == baseline.buffer_totals()

    def test_policy_instances_are_deep_copied(self):
        network = _component_network(num_components=4, chain=3)
        template = FifoPolicy()
        sharded = run(dataset=network, policy=template, shards=2)
        policies = [shard_run.policy for shard_run in sharded.shard_runs]
        assert template not in policies
        assert len({id(p) for p in policies}) == 2

    def test_hash_sharding_supports_dense_policy(self, tiny_taxis_network):
        # Hash shards route interactions by source, so destinations from
        # other shards appear in a shard's stream; the dense policy's
        # universe must include them (regression: UnknownVertexError).
        sharded = run(
            dataset=tiny_taxis_network,
            policy="proportional-dense",
            shards=3,
            shard_by="hash",
        )
        assert sharded.statistics.interactions == tiny_taxis_network.num_interactions

    def test_sharded_limit_is_global(self, tiny_taxis_network):
        # `limit` bounds the whole run, not each shard (regression: a
        # 3-shard run used to process 3 * limit interactions).
        limit = 50
        sharded = run(
            dataset=tiny_taxis_network,
            policy="fifo",
            shards=3,
            shard_by="hash",
            limit=limit,
        )
        assert sharded.statistics.interactions == limit
        baseline = run(dataset=tiny_taxis_network, policy="noprov", limit=limit)
        limited_hash = run(
            dataset=tiny_taxis_network,
            policy="noprov",
            shards=3,
            shard_by="hash",
            limit=limit,
        )
        # Same global prefix: hash totals can only overestimate, never see
        # interactions beyond the prefix.
        assert limited_hash.statistics.interactions == baseline.statistics.interactions

    def test_sharded_limit_exact_on_components(self):
        network = _component_network()
        baseline = run(dataset=network, policy="fifo", limit=12)
        sharded = run(dataset=network, policy="fifo", shards=3, limit=12)
        assert sharded.statistics.interactions == 12
        assert sharded.buffer_totals() == baseline.buffer_totals()

    def test_iterable_dataset_with_shards_rejected(self):
        with pytest.raises(RunConfigurationError):
            run(
                dataset=iter([Interaction("a", "b", 1.0, 1.0)]),
                policy="fifo",
                shards=2,
            )

    def test_hash_sharding_processes_everything_once(self, tiny_taxis_network):
        sharded = run(
            dataset=tiny_taxis_network,
            policy="noprov",
            shards=4,
            shard_by="hash",
        )
        assert (
            sharded.statistics.interactions == tiny_taxis_network.num_interactions
        )
        assert not sharded.partition.exact
        assert "approximate" in sharded.note

    def test_hash_sharding_overestimates_buffered_totals(self, tiny_taxis_network):
        # Documented approximation: relays on one shard cannot see arrivals
        # on another, so extra newborn quantity is generated.
        baseline = run(dataset=tiny_taxis_network, policy="noprov")
        sharded = run(
            dataset=tiny_taxis_network, policy="noprov", shards=4, shard_by="hash"
        )
        assert sum(sharded.buffer_totals().values()) >= sum(
            baseline.buffer_totals().values()
        ) - 1e-9

    def test_mismatched_policy_count_rejected(self):
        network = _component_network()
        plan = partition_network(network, 3)
        with pytest.raises(RunConfigurationError):
            run_shards(plan, [FifoPolicy()])

    def test_sharded_memory_accounting(self):
        network = _component_network()
        sharded = run(
            dataset=network, policy="fifo", shards=3, measure_memory=True
        )
        assert sharded.memory_bytes > 0

    def test_sharded_ceiling_classifies_infeasible(self):
        network = _component_network()
        sharded = run(
            dataset=network,
            policy="proportional-sparse",
            shards=3,
            memory_ceiling_bytes=16,
        )
        assert not sharded.feasible
        assert "exceeds the ceiling" in sharded.note


class TestMergeStatistics:
    def test_counts_summed(self):
        merged = merge_statistics(
            [
                RunStatistics(interactions=10, final_entry_count=5, peak_entry_count=7),
                RunStatistics(interactions=20, final_entry_count=3, peak_entry_count=4),
            ]
        )
        assert merged.interactions == 30
        assert merged.final_entry_count == 8
        assert merged.peak_entry_count == 11

    def test_elapsed_defaults_to_slowest_shard(self):
        merged = merge_statistics(
            [
                RunStatistics(elapsed_seconds=0.5),
                RunStatistics(elapsed_seconds=1.25),
            ]
        )
        assert math.isclose(merged.elapsed_seconds, 1.25)

    def test_explicit_wall_clock_wins(self):
        merged = merge_statistics(
            [RunStatistics(elapsed_seconds=0.5)], elapsed_seconds=2.0
        )
        assert math.isclose(merged.elapsed_seconds, 2.0)

    def test_empty(self):
        merged = merge_statistics([])
        assert merged.interactions == 0
        assert merged.elapsed_seconds == 0.0
