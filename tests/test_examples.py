"""Smoke tests: every example script runs end-to-end and prints something useful."""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    return capsys.readouterr().out


def test_examples_directory_has_at_least_three_scripts():
    assert len(EXAMPLES) >= 3
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    out = run_example(name, capsys)
    assert len(out.strip()) > 0


def test_quickstart_shows_paper_policies(capsys):
    out = run_example("quickstart.py", capsys)
    for label in ("fifo", "lifo", "lrb", "proportional-sparse"):
        assert label in out
    assert "B_v0" in out


def test_fraud_example_reports_alert_summary(capsys):
    out = run_example("financial_fraud_alerts.py", capsys)
    assert "alerts raised" in out


def test_taxi_example_reports_distribution(capsys):
    out = run_example("taxi_passenger_flows.py", capsys)
    assert "passengers" in out
    assert "%" in out


def test_botnet_example_reports_routes(capsys):
    out = run_example("botnet_path_tracing.py", capsys)
    assert "routes taken" in out
    assert "->" in out


def test_loan_example_compares_configurations(capsys):
    out = run_example("loan_network_scalable_provenance.py", capsys)
    assert "full proportional (sparse)" in out
    assert "budget" in out
