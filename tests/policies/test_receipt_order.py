"""Unit tests for the receipt-order selection policies (Section 4.2)."""

from __future__ import annotations

import pytest

from repro.core.interaction import Interaction
from repro.policies.receipt_order import FifoPolicy, LifoPolicy


def seed(policy):
    """Deliver three parcels to ``v`` in a known receipt order."""
    policy.reset()
    policy.process_all(
        [
            Interaction("a", "v", 1.0, 2.0),
            Interaction("b", "v", 2.0, 3.0),
            Interaction("c", "v", 3.0, 4.0),
        ]
    )
    return policy


class TestFifo:
    def test_least_recently_received_leaves_first(self):
        policy = seed(FifoPolicy())
        policy.process(Interaction("v", "u", 4.0, 4.0))
        assert policy.origins("u").as_dict() == pytest.approx({"a": 2, "b": 2})
        assert policy.origins("v").as_dict() == pytest.approx({"b": 1, "c": 4})

    def test_receipt_order_preserved_downstream(self):
        policy = seed(FifoPolicy())
        policy.process(Interaction("v", "u", 4.0, 9.0))
        policy.process(Interaction("u", "w", 5.0, 2.0))
        # u received a's units first, so w gets them first.
        assert policy.origins("w").as_dict() == pytest.approx({"a": 2})

    def test_name(self):
        assert FifoPolicy.name == "fifo"


class TestLifo:
    def test_most_recently_received_leaves_first(self):
        policy = seed(LifoPolicy())
        policy.process(Interaction("v", "u", 4.0, 4.0))
        assert policy.origins("u").as_dict() == pytest.approx({"c": 4})
        assert policy.origins("v").as_dict() == pytest.approx({"a": 2, "b": 3})

    def test_partial_transfer_splits_top_of_stack(self):
        policy = seed(LifoPolicy())
        policy.process(Interaction("v", "u", 4.0, 1.0))
        assert policy.origins("u").as_dict() == pytest.approx({"c": 1})
        assert policy.origins("v").as_dict() == pytest.approx({"a": 2, "b": 3, "c": 3})

    def test_generation_then_stack_order(self):
        policy = LifoPolicy()
        policy.reset()
        policy.process(Interaction("a", "v", 1.0, 1.0))
        policy.process(Interaction("v", "u", 2.0, 3.0))  # 1 relayed + 2 newborn at v
        policy.process(Interaction("u", "w", 3.0, 2.0))  # newest entries leave first
        # u's buffer received [a:1, v:2] in that order; LIFO sends v's 2 first.
        assert policy.origins("w").as_dict() == pytest.approx({"v": 2})
        assert policy.origins("u").as_dict() == pytest.approx({"a": 1})

    def test_name(self):
        assert LifoPolicy.name == "lifo"


class TestSharedBehaviour:
    @pytest.mark.parametrize("factory", [FifoPolicy, LifoPolicy])
    def test_totals_match_noprov(self, factory, paper_interactions):
        from repro.policies.no_provenance import NoProvenancePolicy

        reference = NoProvenancePolicy()
        reference.reset()
        reference.process_all(paper_interactions)
        policy = factory()
        policy.reset()
        policy.process_all(paper_interactions)
        for vertex in ("v0", "v1", "v2"):
            assert policy.buffer_total(vertex) == pytest.approx(
                reference.buffer_total(vertex)
            )

    @pytest.mark.parametrize("factory", [FifoPolicy, LifoPolicy])
    def test_origin_totals_sum_to_buffer(self, factory, small_network):
        policy = factory()
        policy.reset()
        policy.process_all(small_network.interactions)
        for vertex in policy.tracked_vertices():
            assert policy.origins(vertex).total == pytest.approx(
                policy.buffer_total(vertex), rel=1e-9, abs=1e-6
            )

    @pytest.mark.parametrize("factory", [FifoPolicy, LifoPolicy])
    def test_entry_count_positive_after_run(self, factory, small_network):
        policy = factory()
        policy.reset()
        policy.process_all(small_network.interactions)
        assert policy.entry_count() > 0

    def test_receipt_order_cheaper_than_storing_birth_times(self, paper_interactions):
        """Receipt-order buffers do not need birth timestamps for selection."""
        policy = FifoPolicy()
        policy.reset()
        policy.process_all(paper_interactions)
        # Entries still carry a birth_time field (for reporting), but FIFO
        # selection ignores it: entries leave in insertion order even if an
        # older-born entry arrives later.
        policy2 = FifoPolicy()
        policy2.reset()
        policy2.process_all(
            [
                Interaction("old", "x", 1.0, 1.0),
                Interaction("x", "v", 10.0, 1.0),   # old-born unit arrives at v second
                Interaction("new", "v", 5.0, 1.0),
            ]
        )
        # Wait: interactions must be processed in time order; re-order them.
        policy3 = FifoPolicy()
        policy3.reset()
        policy3.process_all(
            [
                Interaction("old", "x", 1.0, 1.0),
                Interaction("new", "v", 5.0, 1.0),
                Interaction("x", "v", 10.0, 1.0),
            ]
        )
        policy3.process(Interaction("v", "u", 11.0, 1.0))
        # FIFO: the unit received first (from "new") leaves first, even though
        # the unit from "old" was born earlier.
        assert policy3.origins("u").as_dict() == pytest.approx({"new": 1})
