"""Unit tests for the NoProv baseline (Algorithm 1)."""

from __future__ import annotations

import pytest

from repro.core.interaction import Interaction
from repro.policies.no_provenance import NoProvenancePolicy


class TestPropagation:
    def test_newborn_quantity_when_buffer_empty(self):
        policy = NoProvenancePolicy()
        policy.reset()
        policy.process(Interaction("a", "b", 1.0, 5.0))
        assert policy.buffer_total("a") == 0.0
        assert policy.buffer_total("b") == 5.0
        assert policy.generated_quantity("a") == 5.0

    def test_relay_without_generation(self):
        policy = NoProvenancePolicy()
        policy.reset()
        policy.process(Interaction("a", "b", 1.0, 5.0))
        policy.process(Interaction("b", "c", 2.0, 3.0))
        assert policy.buffer_total("b") == pytest.approx(2.0)
        assert policy.buffer_total("c") == pytest.approx(3.0)
        assert policy.generated_quantity("b") == 0.0

    def test_partial_generation(self):
        policy = NoProvenancePolicy()
        policy.reset()
        policy.process(Interaction("a", "b", 1.0, 2.0))
        policy.process(Interaction("b", "c", 2.0, 5.0))
        # b holds 2, needs to send 5 -> 3 newborn at b.
        assert policy.generated_quantity("b") == pytest.approx(3.0)
        assert policy.buffer_total("c") == pytest.approx(5.0)
        assert policy.buffer_total("b") == 0.0

    def test_zero_quantity_interaction_is_noop_on_totals(self):
        policy = NoProvenancePolicy()
        policy.reset()
        policy.process(Interaction("a", "b", 1.0, 0.0))
        assert policy.buffer_total("a") == 0.0
        assert policy.buffer_total("b") == 0.0
        assert policy.total_generated() == 0.0

    def test_reset_clears_state(self, paper_interactions):
        policy = NoProvenancePolicy()
        policy.reset()
        policy.process_all(paper_interactions)
        policy.reset()
        assert policy.buffer_total("v0") == 0.0
        assert policy.total_generated() == 0.0

    def test_reset_with_vertices_preregisters_buffers(self):
        policy = NoProvenancePolicy()
        policy.reset(["a", "b"])
        assert policy.entry_count() == 2

    def test_self_loop_keeps_quantity_at_vertex(self):
        policy = NoProvenancePolicy()
        policy.reset()
        policy.process(Interaction("a", "a", 1.0, 5.0))
        # The transfer leaves a with the full 5 units (generated then kept).
        assert policy.buffer_total("a") == pytest.approx(5.0)
        assert policy.generated_quantity("a") == pytest.approx(5.0)


class TestQueries:
    def test_origins_always_empty(self, paper_interactions):
        policy = NoProvenancePolicy()
        policy.reset()
        policy.process_all(paper_interactions)
        assert len(policy.origins("v0")) == 0

    def test_tracked_vertices_only_nonempty(self, paper_interactions):
        policy = NoProvenancePolicy()
        policy.reset()
        policy.process_all(paper_interactions[:2])
        assert set(policy.tracked_vertices()) == {"v0"}

    def test_generated_quantities_mapping(self, paper_interactions):
        policy = NoProvenancePolicy()
        policy.reset()
        policy.process_all(paper_interactions)
        assert policy.generated_quantities() == {"v1": 7, "v2": 2}

    def test_describe_uses_name(self):
        assert NoProvenancePolicy().describe() == "noprov"

    def test_class_flags(self):
        assert NoProvenancePolicy.tracks_provenance is False
        assert NoProvenancePolicy.supports_paths is False
