"""Golden tests: the paper's running example (Figure 3, Tables 2-5).

These tests replay the six-interaction example of the paper and check the
intermediate and final buffer states reported in Tables 2 (NoProv), 3
(least-recently-born), 4 (LIFO) and 5 (proportional selection).
"""

from __future__ import annotations

import pytest

from repro.core.engine import ProvenanceEngine
from repro.policies.generation_time import LeastRecentlyBornPolicy
from repro.policies.no_provenance import NoProvenancePolicy
from repro.policies.proportional import ProportionalDensePolicy, ProportionalSparsePolicy
from repro.policies.receipt_order import FifoPolicy, LifoPolicy


def run_and_collect(policy, interactions, vertices=("v0", "v1", "v2")):
    """Process interactions one by one, recording buffer totals after each."""
    policy.reset(vertices if getattr(policy, "name", "") == "proportional-dense" else ())
    history = []
    for interaction in interactions:
        policy.process(interaction)
        history.append({v: policy.buffer_total(v) for v in vertices})
    return history


class TestTable2NoProv:
    """Buffer totals after each interaction (Table 2)."""

    EXPECTED = [
        {"v0": 0, "v1": 0, "v2": 3},
        {"v0": 5, "v1": 0, "v2": 0},
        {"v0": 2, "v1": 3, "v2": 0},
        {"v0": 2, "v1": 0, "v2": 7},
        {"v0": 2, "v1": 2, "v2": 5},
        {"v0": 3, "v1": 2, "v2": 4},
    ]

    def test_buffer_totals_match_table2(self, paper_interactions):
        history = run_and_collect(NoProvenancePolicy(), paper_interactions)
        for step, expected in zip(history, self.EXPECTED):
            for vertex, quantity in expected.items():
                assert step[vertex] == pytest.approx(quantity)

    def test_every_policy_reproduces_table2_totals(self, paper_interactions, paper_network):
        """Buffer totals are policy-independent (only provenance differs)."""
        policies = [
            NoProvenancePolicy(),
            LeastRecentlyBornPolicy(),
            FifoPolicy(),
            LifoPolicy(),
            ProportionalSparsePolicy(),
            ProportionalDensePolicy(paper_network.vertices),
        ]
        for policy in policies:
            history = run_and_collect(policy, paper_interactions)
            for step, expected in zip(history, self.EXPECTED):
                for vertex, quantity in expected.items():
                    assert step[vertex] == pytest.approx(quantity), policy

    def test_generated_quantities(self, paper_interactions):
        policy = NoProvenancePolicy()
        policy.process_all(paper_interactions)
        assert policy.generated_quantity("v1") == pytest.approx(7)
        assert policy.generated_quantity("v2") == pytest.approx(2)
        assert policy.generated_quantity("v0") == 0.0
        assert policy.total_generated() == pytest.approx(9)


class TestTable3LeastRecentlyBorn:
    """Origin decompositions under the oldest-first policy (Table 3)."""

    def test_final_buffers(self, paper_interactions):
        policy = LeastRecentlyBornPolicy()
        policy.reset()
        policy.process_all(paper_interactions)
        # Final row of Table 3:
        # B_v0 = {(1,1,1),(2,3,2)}  -> origins {v1: 1, v2: 2}
        # B_v1 = {(1,1,2)}          -> origins {v1: 2}
        # B_v2 = {(1,5,4)}          -> origins {v1: 4}
        assert policy.origins("v0").as_dict() == pytest.approx({"v1": 1, "v2": 2})
        assert policy.origins("v1").as_dict() == pytest.approx({"v1": 2})
        assert policy.origins("v2").as_dict() == pytest.approx({"v1": 4})

    def test_intermediate_state_after_fourth_interaction(self, paper_interactions):
        policy = LeastRecentlyBornPolicy()
        policy.reset()
        policy.process_all(paper_interactions[:4])
        # Row 4 of Table 3: B_v2 = {(1,1,3),(1,5,4)}.
        entries = sorted(
            (entry.origin, entry.birth_time, entry.quantity)
            for entry in policy.entries("v2")
        )
        assert entries == [("v1", 1, 3), ("v1", 5, 4)]
        # B_v0 = {(2,3,2)}
        entries_v0 = [
            (entry.origin, entry.birth_time, entry.quantity)
            for entry in policy.entries("v0")
        ]
        assert entries_v0 == [("v2", 3, 2)]

    def test_birth_times_preserved_on_split(self, paper_interactions):
        policy = LeastRecentlyBornPolicy()
        policy.reset()
        policy.process_all(paper_interactions[:5])
        # Row 5 of Table 3: B_v1 = {(1,1,2)} - quantity born at time 1 at v1,
        # partially transferred twice, keeps its original birth time.
        entries = [
            (entry.origin, entry.birth_time, entry.quantity)
            for entry in policy.entries("v1")
        ]
        assert entries == [("v1", 1, 2)]


class TestTable4Lifo:
    """Origin decompositions under the LIFO policy (Table 4)."""

    def test_final_buffers(self, paper_interactions):
        policy = LifoPolicy()
        policy.reset()
        policy.process_all(paper_interactions)
        # Final row of Table 4:
        # B_v0 = {(1,2),(1,1)} -> origins {v1: 3}
        # B_v1 = {(1,2)}       -> origins {v1: 2}
        # B_v2 = {(1,1),(2,2),(1,1)} -> origins {v1: 2, v2: 2}
        assert policy.origins("v0").as_dict() == pytest.approx({"v1": 3})
        assert policy.origins("v1").as_dict() == pytest.approx({"v1": 2})
        assert policy.origins("v2").as_dict() == pytest.approx({"v1": 2, "v2": 2})

    def test_intermediate_state_after_third_interaction(self, paper_interactions):
        policy = LifoPolicy()
        policy.reset()
        policy.process_all(paper_interactions[:3])
        # Row 3 of Table 4: B_v0 = {(1,2)}, B_v1 = {(1,1),(2,2)}.
        assert policy.origins("v0").as_dict() == pytest.approx({"v1": 2})
        assert policy.origins("v1").as_dict() == pytest.approx({"v1": 1, "v2": 2})

    def test_fifo_differs_from_lifo(self, paper_interactions):
        fifo = FifoPolicy()
        fifo.reset()
        fifo.process_all(paper_interactions)
        lifo = LifoPolicy()
        lifo.reset()
        lifo.process_all(paper_interactions)
        assert fifo.origins("v0").as_dict() != lifo.origins("v0").as_dict()


class TestTable5Proportional:
    """Provenance vectors under proportional selection (Table 5)."""

    EXPECTED_FINAL = {
        "v0": {"v1": 2.03, "v2": 0.97},
        "v1": {"v1": 1.66, "v2": 0.34},
        "v2": {"v1": 3.31, "v2": 0.69},
    }

    @pytest.mark.parametrize("dense", [False, True])
    def test_final_vectors(self, paper_interactions, paper_network, dense):
        if dense:
            policy = ProportionalDensePolicy(paper_network.vertices)
        else:
            policy = ProportionalSparsePolicy()
            policy.reset()
        policy.process_all(paper_interactions)
        for vertex, expected in self.EXPECTED_FINAL.items():
            actual = policy.origins(vertex).as_dict()
            assert set(actual) == set(expected)
            for origin, quantity in expected.items():
                assert actual[origin] == pytest.approx(quantity, abs=0.01)

    def test_intermediate_vectors_after_third_interaction(self, paper_interactions):
        policy = ProportionalSparsePolicy()
        policy.reset()
        policy.process_all(paper_interactions[:3])
        # Row 3 of Table 5: p_v0 = [0, 1.2, 0.8], p_v1 = [0, 1.8, 1.2].
        assert policy.origins("v0").as_dict() == pytest.approx({"v1": 1.2, "v2": 0.8})
        assert policy.origins("v1").as_dict() == pytest.approx({"v1": 1.8, "v2": 1.2})

    def test_dense_and_sparse_agree_exactly(self, paper_interactions, paper_network):
        sparse = ProportionalSparsePolicy()
        sparse.reset()
        sparse.process_all(paper_interactions)
        dense = ProportionalDensePolicy(paper_network.vertices)
        dense.process_all(paper_interactions)
        for vertex in paper_network.vertices:
            assert sparse.origins(vertex).approx_equal(dense.origins(vertex))


class TestFigure1FifoExample:
    """The FIFO transfer of Figure 1: 4 units from w, then 1 unit from z."""

    def test_fifo_selects_oldest_received_first(self):
        from repro.core.interaction import Interaction

        interactions = [
            Interaction("w", "v", 1, 4),   # v receives 4 units originating at w
            Interaction("z", "v", 2, 3),   # then 3 units originating at z
            Interaction("v", "u", 3, 5),   # v relays 5 units to u (FIFO)
        ]
        policy = FifoPolicy()
        policy.reset()
        policy.process_all(interactions)
        assert policy.origins("u").as_dict() == pytest.approx({"w": 4, "z": 1})
        assert policy.origins("v").as_dict() == pytest.approx({"z": 2})
