"""Unit tests for the generation-time selection policies (Section 4.1)."""

from __future__ import annotations

import pytest

from repro.core.interaction import Interaction
from repro.policies.generation_time import LeastRecentlyBornPolicy, MostRecentlyBornPolicy


def seed_buffer(policy):
    """Give vertex ``v`` three quantity elements born at times 1, 2, 3."""
    policy.reset()
    policy.process_all(
        [
            Interaction("a", "v", 1.0, 2.0),   # 2 units born at a, time 1
            Interaction("b", "v", 2.0, 3.0),   # 3 units born at b, time 2
            Interaction("c", "v", 3.0, 4.0),   # 4 units born at c, time 3
        ]
    )
    return policy


class TestLeastRecentlyBorn:
    def test_oldest_quantities_leave_first(self):
        policy = seed_buffer(LeastRecentlyBornPolicy())
        policy.process(Interaction("v", "u", 4.0, 4.0))
        # The 2 units from a (time 1) and 2 of the 3 units from b (time 2) move.
        assert policy.origins("u").as_dict() == pytest.approx({"a": 2, "b": 2})
        assert policy.origins("v").as_dict() == pytest.approx({"b": 1, "c": 4})

    def test_birth_time_kept_through_transfers(self):
        policy = seed_buffer(LeastRecentlyBornPolicy())
        policy.process(Interaction("v", "u", 4.0, 2.0))
        entries = policy.entries("u")
        assert len(entries) == 1
        assert entries[0].birth_time == 1.0
        assert entries[0].origin == "a"

    def test_generation_when_buffer_insufficient(self):
        policy = LeastRecentlyBornPolicy()
        policy.reset()
        policy.process(Interaction("a", "v", 1.0, 2.0))
        policy.process(Interaction("v", "u", 5.0, 6.0))
        # 2 relayed + 4 newborn at v with birth time 5.
        origins = policy.origins("u").as_dict()
        assert origins == pytest.approx({"a": 2, "v": 4})
        newborn = [entry for entry in policy.entries("u") if entry.origin == "v"]
        assert newborn[0].birth_time == 5.0

    def test_name_and_flags(self):
        assert LeastRecentlyBornPolicy.name == "lrb"
        assert LeastRecentlyBornPolicy.supports_paths is True


class TestMostRecentlyBorn:
    def test_newest_quantities_leave_first(self):
        policy = seed_buffer(MostRecentlyBornPolicy())
        policy.process(Interaction("v", "u", 4.0, 4.0))
        # The 4 units from c (time 3) move first and satisfy the transfer.
        assert policy.origins("u").as_dict() == pytest.approx({"c": 4})
        assert policy.origins("v").as_dict() == pytest.approx({"a": 2, "b": 3})

    def test_partial_split_of_newest(self):
        policy = seed_buffer(MostRecentlyBornPolicy())
        policy.process(Interaction("v", "u", 4.0, 1.5))
        assert policy.origins("u").as_dict() == pytest.approx({"c": 1.5})
        assert policy.origins("v").as_dict() == pytest.approx({"a": 2, "b": 3, "c": 2.5})

    def test_mirror_of_lrb_on_paper_example(self, paper_interactions):
        lrb = LeastRecentlyBornPolicy()
        lrb.reset()
        lrb.process_all(paper_interactions)
        mrb = MostRecentlyBornPolicy()
        mrb.reset()
        mrb.process_all(paper_interactions)
        # Buffer totals agree; origin decompositions generally differ.
        for vertex in ("v0", "v1", "v2"):
            assert lrb.buffer_total(vertex) == pytest.approx(mrb.buffer_total(vertex))
        assert lrb.origins("v2").as_dict() != mrb.origins("v2").as_dict()

    def test_name(self):
        assert MostRecentlyBornPolicy.name == "mrb"


class TestEntryAccounting:
    def test_entry_count_counts_buffered_triples(self, paper_interactions):
        policy = LeastRecentlyBornPolicy()
        policy.reset()
        policy.process_all(paper_interactions)
        # Final state of Table 3 has 4 triples across the three buffers.
        assert policy.entry_count() == 4

    def test_entries_returns_copies(self, paper_interactions):
        policy = LeastRecentlyBornPolicy()
        policy.reset()
        policy.process_all(paper_interactions)
        entries = policy.entries("v0")
        entries[0].quantity = 999
        assert policy.buffer_total("v0") == pytest.approx(3)
