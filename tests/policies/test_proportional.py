"""Unit tests for the proportional selection policy (Section 4.3)."""

from __future__ import annotations

import pytest

from repro.core.interaction import Interaction
from repro.exceptions import PolicyConfigurationError, UnknownVertexError
from repro.policies.proportional import ProportionalDensePolicy, ProportionalSparsePolicy


class TestDenseConfiguration:
    def test_requires_vertex_universe(self):
        with pytest.raises(PolicyConfigurationError):
            ProportionalDensePolicy().reset(())

    def test_constructor_with_vertices(self):
        policy = ProportionalDensePolicy(["a", "b", "c"])
        policy.process(Interaction("a", "b", 1.0, 2.0))
        assert policy.buffer_total("b") == 2.0

    def test_unknown_vertex_raises(self):
        policy = ProportionalDensePolicy(["a", "b"])
        with pytest.raises(UnknownVertexError):
            policy.process(Interaction("a", "z", 1.0, 2.0))

    def test_entry_count_is_cells(self):
        policy = ProportionalDensePolicy(["a", "b", "c"])
        policy.process(Interaction("a", "b", 1.0, 2.0))
        # Two touched vertices (a and b), three cells each.
        assert policy.entry_count() == 6
        assert policy.nonzero_entry_count() == 1


@pytest.mark.parametrize("dense", [False, True])
class TestProportionalSemantics:
    def make(self, dense, vertices=("a", "b", "c", "d")):
        if dense:
            return ProportionalDensePolicy(list(vertices))
        policy = ProportionalSparsePolicy()
        policy.reset()
        return policy

    def test_full_relay_moves_whole_vector(self, dense):
        policy = self.make(dense)
        policy.process(Interaction("a", "b", 1.0, 4.0))
        policy.process(Interaction("b", "c", 2.0, 4.0))
        assert policy.origins("c").as_dict() == pytest.approx({"a": 4})
        assert policy.buffer_total("b") == 0.0
        assert len(policy.origins("b")) == 0

    def test_full_relay_with_generation(self, dense):
        policy = self.make(dense)
        policy.process(Interaction("a", "b", 1.0, 4.0))
        policy.process(Interaction("b", "c", 2.0, 6.0))
        assert policy.origins("c").as_dict() == pytest.approx({"a": 4, "b": 2})

    def test_partial_transfer_is_proportional(self, dense):
        policy = self.make(dense)
        policy.process(Interaction("a", "c", 1.0, 6.0))
        policy.process(Interaction("b", "c", 2.0, 3.0))
        # c holds 9 units: 6 from a, 3 from b.  Transfer 3 units -> 1/3.
        policy.process(Interaction("c", "d", 3.0, 3.0))
        assert policy.origins("d").as_dict() == pytest.approx({"a": 2, "b": 1})
        assert policy.origins("c").as_dict() == pytest.approx({"a": 4, "b": 2})

    def test_mixing_is_origin_based_not_path_based(self, dense):
        policy = self.make(dense)
        policy.process(Interaction("a", "b", 1.0, 2.0))
        policy.process(Interaction("a", "c", 2.0, 2.0))
        policy.process(Interaction("b", "d", 3.0, 2.0))
        policy.process(Interaction("c", "d", 4.0, 2.0))
        # Both parcels originate at a (via different routes) and are merged.
        assert policy.origins("d").as_dict() == pytest.approx({"a": 4})

    def test_buffer_totals_match_vector_sums(self, dense, small_network):
        policy = (
            ProportionalDensePolicy(small_network.vertices)
            if dense
            else self.make(dense)
        )
        policy.process_all(small_network.interactions)
        for vertex in policy.tracked_vertices():
            assert policy.origins(vertex).total == pytest.approx(
                policy.buffer_total(vertex), rel=1e-6, abs=1e-6
            )

    def test_exact_drain_leaves_empty_vector(self, dense):
        policy = self.make(dense)
        policy.process(Interaction("a", "b", 1.0, 5.0))
        policy.process(Interaction("b", "c", 2.0, 5.0))
        assert policy.buffer_total("b") == 0.0
        assert policy.origins("b").total == 0.0


class TestSparseSpecifics:
    def test_average_list_length(self):
        policy = ProportionalSparsePolicy()
        policy.reset()
        policy.process(Interaction("a", "c", 1.0, 1.0))
        policy.process(Interaction("b", "c", 2.0, 1.0))
        # Vectors: a -> {} (cleared), b -> {} (cleared), c -> {a, b}.
        assert policy.entry_count() == 2
        assert policy.average_list_length() == pytest.approx(2 / 3)

    def test_average_list_length_empty(self):
        policy = ProportionalSparsePolicy()
        policy.reset()
        assert policy.average_list_length() == 0.0

    def test_provenance_vector_returns_copy(self):
        policy = ProportionalSparsePolicy()
        policy.reset()
        policy.process(Interaction("a", "b", 1.0, 2.0))
        vector = policy.provenance_vector("b")
        vector["a"] = 999
        assert policy.origins("b")["a"] == pytest.approx(2.0)

    def test_tiny_residues_are_pruned(self):
        policy = ProportionalSparsePolicy()
        policy.reset()
        policy.process(Interaction("a", "b", 1.0, 1.0))
        # Transfer almost everything; the residue left at b is ~1e-13 per
        # origin and must be pruned from the sparse vector.
        policy.process(Interaction("b", "c", 2.0, 1.0 - 1e-13))
        assert len(policy.provenance_vector("b")) == 0

    def test_dense_vs_sparse_equivalence_on_network(self, small_network):
        dense = ProportionalDensePolicy(small_network.vertices)
        dense.process_all(small_network.interactions)
        sparse = ProportionalSparsePolicy()
        sparse.reset()
        sparse.process_all(small_network.interactions)
        for vertex in small_network.vertices:
            assert sparse.origins(vertex).approx_equal(
                dense.origins(vertex), rel_tol=1e-6, abs_tol=1e-6
            )
