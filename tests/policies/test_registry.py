"""Unit tests for the policy registry."""

from __future__ import annotations

import pytest

from repro.exceptions import PolicyNotRegisteredError
from repro.policies.base import SelectionPolicy
from repro.policies.registry import POLICY_FACTORIES, available_policies, make_policy


class TestRegistry:
    def test_all_expected_policies_registered(self):
        assert set(available_policies()) == {
            "noprov",
            "lrb",
            "mrb",
            "fifo",
            "lifo",
            "proportional-dense",
            "proportional-sparse",
            "proportional-selective",
            "proportional-grouped",
            "proportional-windowed",
            "proportional-time-windowed",
            "proportional-budget",
            "lazy-replay",
        }

    def test_available_policies_sorted(self):
        names = available_policies()
        assert names == sorted(names)

    def test_make_simple_policy(self):
        policy = make_policy("fifo")
        assert isinstance(policy, SelectionPolicy)
        assert policy.name == "fifo"

    def test_make_policy_with_kwargs(self):
        policy = make_policy("fifo", track_paths=True)
        assert policy.track_paths is True

    def test_make_budget_policy(self):
        policy = make_policy("proportional-budget", capacity=10)
        assert policy.capacity == 10

    def test_make_windowed_policy(self):
        policy = make_policy("proportional-windowed", window=500)
        assert policy.window == 500

    def test_make_dense_policy_needs_vertices(self):
        policy = make_policy("proportional-dense", vertices=["a", "b"])
        assert policy.name == "proportional-dense"

    def test_unknown_policy_raises(self):
        with pytest.raises(PolicyNotRegisteredError):
            make_policy("does-not-exist")

    def test_factory_names_match_policy_names(self):
        for name, factory in POLICY_FACTORIES.items():
            assert getattr(factory, "name", name) == name
