"""Property-based cross-policy invariants (DESIGN.md Section 6).

These tests generate random interaction streams with hypothesis and check
the invariants that must hold for *every* provenance policy, regardless of
selection order:

1. quantity conservation: the origin decomposition of every buffer sums to
   the buffer total computed by the NoProv baseline;
2. buffer totals are identical across policies;
3. the total provenance mass over all buffers equals the total quantity ever
   generated (newborn) in the network;
4. no quantity is ever negative;
5. when an interaction drains a source buffer completely, every policy
   transfers exactly the same provenance mass.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.interaction import Interaction
from repro.policies.generation_time import LeastRecentlyBornPolicy, MostRecentlyBornPolicy
from repro.policies.no_provenance import NoProvenancePolicy
from repro.policies.proportional import ProportionalDensePolicy, ProportionalSparsePolicy
from repro.policies.receipt_order import FifoPolicy, LifoPolicy

VERTICES = list(range(6))


@st.composite
def interaction_streams(draw, max_size: int = 60):
    """Random time-ordered interaction streams over a small vertex universe."""
    size = draw(st.integers(min_value=1, max_value=max_size))
    interactions = []
    time = 0.0
    for _ in range(size):
        source = draw(st.sampled_from(VERTICES))
        destination = draw(st.sampled_from([v for v in VERTICES if v != source]))
        quantity = draw(
            st.floats(min_value=0.01, max_value=50.0, allow_nan=False, allow_infinity=False)
        )
        time += draw(st.floats(min_value=0.01, max_value=2.0, allow_nan=False))
        interactions.append(Interaction(source, destination, time, quantity))
    return interactions


def all_policies():
    return [
        LeastRecentlyBornPolicy(),
        MostRecentlyBornPolicy(),
        FifoPolicy(),
        LifoPolicy(),
        ProportionalSparsePolicy(),
        ProportionalDensePolicy(VERTICES),
    ]


def run(policy, interactions):
    if isinstance(policy, ProportionalDensePolicy):
        policy.reset(VERTICES)
    else:
        policy.reset()
    policy.process_all(interactions)
    return policy


@settings(max_examples=40, deadline=None)
@given(interactions=interaction_streams())
def test_property_conservation_against_noprov(interactions):
    reference = run(NoProvenancePolicy(), interactions)
    for policy in all_policies():
        run(policy, interactions)
        for vertex in VERTICES:
            expected = reference.buffer_total(vertex)
            assert policy.buffer_total(vertex) == pytest.approx(
                expected, rel=1e-7, abs=1e-7
            ), f"{policy.describe()} disagrees on |B_{vertex}|"
            assert policy.origins(vertex).total == pytest.approx(
                expected, rel=1e-7, abs=1e-7
            ), f"{policy.describe()} origin mass != buffer total at {vertex}"


@settings(max_examples=40, deadline=None)
@given(interactions=interaction_streams())
def test_property_total_provenance_equals_generated_mass(interactions):
    reference = run(NoProvenancePolicy(), interactions)
    generated_total = reference.total_generated()
    for policy in all_policies():
        run(policy, interactions)
        provenance_mass = sum(
            policy.origins(vertex).total for vertex in VERTICES
        )
        assert provenance_mass == pytest.approx(generated_total, rel=1e-7, abs=1e-7)


@settings(max_examples=40, deadline=None)
@given(interactions=interaction_streams())
def test_property_no_negative_quantities(interactions):
    for policy in all_policies():
        run(policy, interactions)
        for vertex in VERTICES:
            assert policy.buffer_total(vertex) >= -1e-9
            for origin, quantity in policy.origins(vertex).items():
                assert quantity >= 0, (policy.describe(), vertex, origin)


@settings(max_examples=40, deadline=None)
@given(interactions=interaction_streams())
def test_property_aggregate_attribution_matches_generation_per_origin(interactions):
    """Summed over all buffers, each origin is credited exactly what it generated.

    Individual buffers attribute different origins under different selection
    policies, but relay never creates or destroys quantity, so the aggregate
    per-origin attribution is policy-independent and equals the newborn
    quantity measured by the NoProv baseline.
    """
    reference = run(NoProvenancePolicy(), interactions)
    generated = reference.generated_quantities()
    for policy in all_policies():
        run(policy, interactions)
        attributed = {}
        for vertex in VERTICES:
            for origin, quantity in policy.origins(vertex).items():
                attributed[origin] = attributed.get(origin, 0.0) + quantity
        for origin in set(generated) | set(attributed):
            assert attributed.get(origin, 0.0) == pytest.approx(
                generated.get(origin, 0.0), rel=1e-6, abs=1e-6
            ), (policy.describe(), origin)


@settings(max_examples=30, deadline=None)
@given(interactions=interaction_streams(max_size=40))
def test_property_full_drain_empties_source_in_every_policy(interactions):
    """Append an interaction draining one buffer entirely: the source empties
    and the destination total grows identically under every policy."""
    reference = run(NoProvenancePolicy(), interactions)
    non_empty = [v for v in VERTICES if reference.buffer_total(v) > 0]
    if not non_empty:
        return
    source = non_empty[0]
    destination = (source + 1) % len(VERTICES)
    total = reference.buffer_total(source)
    destination_before = reference.buffer_total(destination)
    last_time = interactions[-1].time + 1.0
    draining = interactions + [Interaction(source, destination, last_time, total)]

    for policy in all_policies():
        run(policy, draining)
        assert policy.buffer_total(source) == pytest.approx(0.0, abs=1e-7)
        assert policy.origins(source).total == pytest.approx(0.0, abs=1e-7)
        assert policy.buffer_total(destination) == pytest.approx(
            destination_before + total, rel=1e-7, abs=1e-7
        )
