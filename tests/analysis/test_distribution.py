"""Unit tests for the accumulation/provenance-distribution tracker (Figure 2)."""

from __future__ import annotations

import pytest

from repro.analysis.distribution import AccumulationTracker
from repro.core.engine import ProvenanceEngine
from repro.core.interaction import Interaction
from repro.policies.receipt_order import FifoPolicy


class TestAccumulationTracker:
    def test_records_only_deliveries_by_default(self, paper_network):
        tracker = AccumulationTracker(watched=["v0"])
        engine = ProvenanceEngine(FifoPolicy(), observers=[tracker])
        engine.run(paper_network)
        series = tracker.series("v0")
        # v0 receives quantity at interactions 2 (index 1) and 6 (index 5).
        assert [point.interaction_index for point in series.points] == [1, 5]

    def test_records_outgoing_when_requested(self, paper_network):
        tracker = AccumulationTracker(watched=["v0"], record_outgoing=True)
        engine = ProvenanceEngine(FifoPolicy(), observers=[tracker])
        engine.run(paper_network)
        indices = [point.interaction_index for point in tracker.series("v0").points]
        assert indices == [1, 2, 5]  # also the outgoing interaction at index 2

    def test_points_carry_provenance_distribution(self, paper_network):
        tracker = AccumulationTracker(watched=["v0"])
        engine = ProvenanceEngine(FifoPolicy(), observers=[tracker])
        engine.run(paper_network)
        final = tracker.series("v0").points[-1]
        assert final.buffered_quantity == pytest.approx(3.0)
        assert sum(final.distribution().values()) == pytest.approx(1.0)

    def test_unwatched_vertex_raises(self, paper_network):
        tracker = AccumulationTracker(watched=["v0"])
        with pytest.raises(KeyError):
            tracker.series("v1")

    def test_watched_vertices_listing(self):
        tracker = AccumulationTracker(watched=["b", "a"])
        assert set(tracker.watched_vertices()) == {"a", "b"}


class TestAccumulationSeries:
    def make_series(self, paper_network, vertex="v2"):
        tracker = AccumulationTracker(watched=[vertex])
        engine = ProvenanceEngine(FifoPolicy(), observers=[tracker])
        engine.run(paper_network)
        return tracker.series(vertex)

    def test_quantities_and_times_aligned(self, paper_network):
        series = self.make_series(paper_network)
        assert len(series.quantities()) == len(series.times()) == len(series.points)

    def test_peak(self, paper_network):
        series = self.make_series(paper_network)
        assert series.peak().buffered_quantity == max(series.quantities())

    def test_peak_empty_series(self):
        tracker = AccumulationTracker(watched=["never-touched"])
        assert tracker.series("never-touched").peak() is None

    def test_final_distribution_empty_series(self):
        tracker = AccumulationTracker(watched=["never-touched"])
        assert tracker.series("never-touched").final_distribution() == {}

    def test_distinct_origins(self, paper_network):
        series = self.make_series(paper_network, vertex="v2")
        assert series.distinct_origins() >= 1

    def test_series_snapshot_is_isolated(self, paper_network):
        tracker = AccumulationTracker(watched=["v2"])
        engine = ProvenanceEngine(FifoPolicy(), observers=[tracker])
        engine.run(paper_network)
        series = tracker.series("v2")
        series.points.clear()
        assert len(tracker.series("v2").points) > 0

    def test_taxis_style_accumulation(self, tiny_taxis_network):
        """End-to-end: watch the busiest receiver of the taxi network."""
        from repro.analysis.contributors import top_receivers

        busiest = top_receivers(tiny_taxis_network, 1)[0]
        tracker = AccumulationTracker(watched=[busiest])
        engine = ProvenanceEngine(FifoPolicy(), observers=[tracker])
        engine.run(tiny_taxis_network)
        series = tracker.series(busiest)
        assert len(series.points) > 0
        # Provenance fractions always form a probability distribution.
        for point in series.points:
            if point.buffered_quantity > 0:
                assert sum(point.distribution().values()) == pytest.approx(1.0)
