"""Unit tests for contributor/receiver/degree vertex selection."""

from __future__ import annotations

import pytest

from repro.analysis.contributors import top_contributors, top_degree, top_receivers
from repro.core.interaction import Interaction
from repro.core.network import TemporalInteractionNetwork


@pytest.fixture
def star_network():
    """hub generates a lot; leaves generate little."""
    interactions = [
        Interaction("hub", "a", 1.0, 100.0),
        Interaction("hub", "b", 2.0, 50.0),
        Interaction("a", "hub", 3.0, 10.0),    # relays part of what it got + generates 0
        Interaction("c", "hub", 4.0, 5.0),     # c generates 5
    ]
    return TemporalInteractionNetwork.from_interactions(interactions)


class TestTopContributors:
    def test_largest_generator_first(self, star_network):
        assert top_contributors(star_network, 1) == ["hub"]

    def test_second_contributor(self, star_network):
        assert top_contributors(star_network, 2) == ["hub", "c"]

    def test_fills_with_high_degree_vertices_when_needed(self, star_network):
        selected = top_contributors(star_network, 4)
        assert len(selected) == 4
        assert selected[0] == "hub"
        assert len(set(selected)) == 4

    def test_rejects_non_positive_k(self, star_network):
        with pytest.raises(ValueError):
            top_contributors(star_network, 0)

    def test_matches_paper_example(self, paper_network):
        # v1 generates 7 units, v2 generates 2 (Table 2).
        assert top_contributors(paper_network, 2) == ["v1", "v2"]

    def test_deterministic_under_ties(self):
        interactions = [
            Interaction("a", "x", 1.0, 5.0),
            Interaction("b", "y", 2.0, 5.0),
        ]
        network = TemporalInteractionNetwork.from_interactions(interactions)
        assert top_contributors(network, 2) == top_contributors(network, 2)


class TestTopReceivers:
    def test_largest_receiver_first(self, star_network):
        assert top_receivers(star_network, 1) == ["a"]

    def test_rejects_non_positive_k(self, star_network):
        with pytest.raises(ValueError):
            top_receivers(star_network, -1)

    def test_receivers_differ_from_contributors(self, star_network):
        assert top_receivers(star_network, 1) != top_contributors(star_network, 1)


class TestTopDegree:
    def test_hub_has_highest_degree(self, star_network):
        assert top_degree(star_network, 1) == ["hub"]

    def test_rejects_non_positive_k(self, star_network):
        with pytest.raises(ValueError):
            top_degree(star_network, 0)

    def test_returns_at_most_num_vertices(self, star_network):
        assert len(top_degree(star_network, 100)) == star_network.num_vertices
