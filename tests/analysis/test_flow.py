"""Unit tests for pairwise flow / contribution analyses."""

from __future__ import annotations

import pytest

from repro.analysis.flow import contribution, contribution_matrix, direct_flow, top_financiers
from repro.core.engine import ProvenanceEngine
from repro.core.interaction import Interaction
from repro.core.network import TemporalInteractionNetwork
from repro.policies.proportional import ProportionalSparsePolicy
from repro.policies.receipt_order import FifoPolicy


@pytest.fixture
def relay_network():
    """origin generates 10 units that reach sink via a relay; sink also gets 2 direct."""
    interactions = [
        Interaction("origin", "relay", 1.0, 10.0),
        Interaction("relay", "sink", 2.0, 10.0),
        Interaction("direct", "sink", 3.0, 2.0),
    ]
    return TemporalInteractionNetwork.from_interactions(interactions)


@pytest.fixture
def relay_engine(relay_network):
    engine = ProvenanceEngine(FifoPolicy())
    engine.run(relay_network)
    return engine


class TestContribution:
    def test_indirect_contribution_found(self, relay_engine):
        assert contribution(relay_engine, "origin", "sink") == pytest.approx(10.0)

    def test_relay_contributes_nothing(self, relay_engine):
        # The relay only forwarded quantity; it generated none of it.
        assert contribution(relay_engine, "relay", "sink") == 0.0

    def test_direct_contribution(self, relay_engine):
        assert contribution(relay_engine, "direct", "sink") == pytest.approx(2.0)

    def test_accepts_bare_policy(self, relay_network):
        policy = ProportionalSparsePolicy()
        policy.reset()
        policy.process_all(relay_network.interactions)
        assert contribution(policy, "origin", "sink") == pytest.approx(10.0)

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            contribution("not a policy", "a", "b")


class TestContributionMatrix:
    def test_matrix_shape_and_values(self, relay_engine):
        matrix = contribution_matrix(
            relay_engine, origins=["origin", "direct", "relay"], destinations=["sink"]
        )
        assert matrix["sink"]["origin"] == pytest.approx(10.0)
        assert matrix["sink"]["direct"] == pytest.approx(2.0)
        assert matrix["sink"]["relay"] == 0.0

    def test_zero_filled_for_untouched_destination(self, relay_engine):
        matrix = contribution_matrix(relay_engine, origins=["origin"], destinations=["origin"])
        assert matrix["origin"]["origin"] == 0.0


class TestDirectFlow:
    def test_existing_edge(self, relay_network):
        assert direct_flow(relay_network, "origin", "relay") == pytest.approx(10.0)

    def test_missing_edge_is_zero(self, relay_network):
        assert direct_flow(relay_network, "origin", "sink") == 0.0

    def test_unknown_vertex_is_zero(self, relay_network):
        assert direct_flow(relay_network, "ghost", "sink") == 0.0

    def test_direct_vs_provenance_contribution_differ(self, relay_network, relay_engine):
        # No direct edge origin->sink, yet provenance shows origin financed it.
        assert direct_flow(relay_network, "origin", "sink") == 0.0
        assert contribution(relay_engine, "origin", "sink") == pytest.approx(10.0)


class TestTopFinanciers:
    def test_ordering(self, relay_engine):
        ranked = top_financiers(relay_engine, "sink", 2)
        assert ranked[0] == ("origin", pytest.approx(10.0))
        assert ranked[1] == ("direct", pytest.approx(2.0))

    def test_rejects_non_positive_k(self, relay_engine):
        with pytest.raises(ValueError):
            top_financiers(relay_engine, "sink", 0)

    def test_on_synthetic_network(self, small_network):
        engine = ProvenanceEngine(ProportionalSparsePolicy())
        engine.run(small_network)
        busiest = max(engine.buffer_totals(), key=engine.buffer_total)
        financiers = top_financiers(engine, busiest, 3)
        assert len(financiers) >= 1
        quantities = [quantity for _, quantity in financiers]
        assert quantities == sorted(quantities, reverse=True)
