"""Unit tests for provenance-based alerting (Section 7.6 / Figure 9)."""

from __future__ import annotations

import pytest

from repro.analysis.alerts import NeighbourOriginAlertRule, ProvenanceAlert
from repro.core.engine import ProvenanceEngine
from repro.core.interaction import Interaction
from repro.core.provenance import OriginSet
from repro.policies.proportional import ProportionalSparsePolicy


def run_with_rule(interactions, threshold, **kwargs):
    rule = NeighbourOriginAlertRule(threshold, **kwargs)
    engine = ProvenanceEngine(ProportionalSparsePolicy(), observers=[rule])
    engine.run(interactions)
    return rule


class TestRuleConfiguration:
    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            NeighbourOriginAlertRule(0.0)


class TestAlertFiring:
    def test_alert_when_quantity_relayed_from_far_origin(self):
        # origin generates 100 units, mule relays them to target: the target's
        # quantity originates from "origin", which is NOT a direct neighbour.
        interactions = [
            Interaction("origin", "mule", 1.0, 100.0),
            Interaction("mule", "target", 2.0, 100.0),
        ]
        rule = run_with_rule(interactions, threshold=50.0)
        assert rule.alert_count() == 1
        alert = rule.alerts[0]
        assert alert.vertex == "target"
        assert alert.buffered_quantity == pytest.approx(100.0)
        assert alert.contributing_vertices == 1
        assert alert.is_few_contributors()

    def test_no_alert_when_origin_is_direct_neighbour(self):
        # neighbour itself generates the quantity it sends, so the buffered
        # quantity at target DOES originate from a direct neighbour.
        interactions = [Interaction("neighbour", "target", 1.0, 100.0)]
        rule = run_with_rule(interactions, threshold=50.0)
        assert rule.alert_count() == 0

    def test_no_alert_below_threshold(self):
        interactions = [
            Interaction("origin", "mule", 1.0, 10.0),
            Interaction("mule", "target", 2.0, 10.0),
        ]
        rule = run_with_rule(interactions, threshold=50.0)
        assert rule.alert_count() == 0

    def test_smurfing_pattern_many_contributors(self):
        # Many distinct origins send small amounts through mules to one target.
        interactions = []
        time = 1.0
        for index in range(20):
            origin = f"origin-{index}"
            mule = f"mule-{index}"
            interactions.append(Interaction(origin, mule, time, 10.0))
            time += 1.0
            interactions.append(Interaction(mule, "collector", time, 10.0))
            time += 1.0
        rule = run_with_rule(interactions, threshold=100.0)
        assert rule.alert_count() >= 1
        last = rule.alerts[-1]
        assert last.contributing_vertices > 5
        assert not last.is_few_contributors()

    def test_max_alerts_bound(self):
        interactions = []
        time = 1.0
        for index in range(10):
            interactions.append(Interaction("origin", f"mule{index}", time, 100.0))
            time += 1.0
            interactions.append(Interaction(f"mule{index}", "target", time, 100.0))
            time += 1.0
        limited = run_with_rule(interactions, threshold=10.0, max_alerts=3)
        assert limited.alert_count() == 3

    def test_summary_counts(self):
        interactions = [
            Interaction("origin", "mule", 1.0, 100.0),
            Interaction("mule", "target", 2.0, 100.0),
        ]
        rule = run_with_rule(interactions, threshold=50.0)
        summary = rule.summary()
        assert summary["alerts"] == 1
        assert summary["few_contributor_alerts"] == 1
        assert summary["many_contributor_alerts"] == 0


class TestProvenanceAlert:
    def test_contributing_vertices_and_classification(self):
        alert = ProvenanceAlert(
            interaction_index=3,
            time=1.0,
            vertex="v",
            buffered_quantity=100.0,
            origins=OriginSet({"a": 60.0, "b": 40.0}),
        )
        assert alert.contributing_vertices == 2
        assert alert.is_few_contributors(threshold=5)
        assert not alert.is_few_contributors(threshold=2)

    def test_alerts_on_preset_network_run(self):
        """Smoke test on a synthetic bitcoin-like network."""
        from repro.datasets.catalog import load_preset

        network = load_preset("bitcoin", scale=0.02)
        threshold = 50.0 * network.average_quantity()
        rule = NeighbourOriginAlertRule(threshold)
        engine = ProvenanceEngine(ProportionalSparsePolicy(), observers=[rule])
        engine.run(network)
        # The rule must never alert on a vertex whose buffer is below threshold.
        for alert in rule.alerts:
            assert alert.buffered_quantity > threshold
