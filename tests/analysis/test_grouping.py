"""Unit tests for vertex grouping strategies."""

from __future__ import annotations

import pytest

from repro.analysis.grouping import (
    attribute_groups,
    community_groups,
    degree_groups,
    hash_groups,
    round_robin_groups,
)
from repro.core.interaction import Interaction
from repro.core.network import TemporalInteractionNetwork


class TestRoundRobin:
    def test_cycles_through_groups(self):
        groups = round_robin_groups(["a", "b", "c", "d", "e"], 2)
        assert groups == {"a": 0, "b": 1, "c": 0, "d": 1, "e": 0}

    def test_rejects_zero_groups(self):
        with pytest.raises(ValueError):
            round_robin_groups(["a"], 0)

    def test_single_group(self):
        assert set(round_robin_groups(["a", "b"], 1).values()) == {0}


class TestHashGroups:
    def test_all_groups_in_range(self):
        groups = hash_groups([f"v{i}" for i in range(100)], 7)
        assert set(groups.values()) <= set(range(7))

    def test_deterministic(self):
        vertices = [f"v{i}" for i in range(20)]
        assert hash_groups(vertices, 3) == hash_groups(vertices, 3)

    def test_rejects_zero_groups(self):
        with pytest.raises(ValueError):
            hash_groups(["a"], 0)


class TestAttributeGroups:
    def test_uses_attribute_values(self):
        groups = attribute_groups({"a": "US", "b": "GR", "c": "US"})
        assert groups == {"a": "US", "b": "GR", "c": "US"}

    def test_missing_vertices_not_included(self):
        groups = attribute_groups({"a": "US"})
        assert "b" not in groups


class TestDegreeGroups:
    def test_highest_degree_in_group_zero(self, paper_network):
        groups = degree_groups(paper_network, 2)
        # v2 has the highest degree in the running example.
        assert groups["v2"] == 0

    def test_group_count_respected(self, small_network):
        groups = degree_groups(small_network, 5)
        assert set(groups.values()) <= set(range(5))
        assert len(groups) == small_network.num_vertices

    def test_rejects_zero_groups(self, paper_network):
        with pytest.raises(ValueError):
            degree_groups(paper_network, 0)


class TestCommunityGroups:
    def test_two_cliques_fall_in_different_groups(self):
        interactions = []
        time = 1.0
        # Two internally well-connected groups with a single bridge.
        for group, members in enumerate((["a1", "a2", "a3"], ["b1", "b2", "b3"])):
            for source in members:
                for destination in members:
                    if source != destination:
                        interactions.append(Interaction(source, destination, time, 1.0))
                        time += 1.0
        interactions.append(Interaction("a1", "b1", time, 1.0))
        network = TemporalInteractionNetwork.from_interactions(interactions)

        groups = community_groups(network)
        assert groups["a1"] == groups["a2"] == groups["a3"]
        assert groups["b1"] == groups["b2"] == groups["b3"]
        assert groups["a1"] != groups["b1"]

    def test_num_groups_cap(self, small_network):
        groups = community_groups(small_network, num_groups=3)
        assert set(groups.values()) <= set(range(3))

    def test_groups_feed_grouped_policy(self, paper_network):
        from repro.scalable.grouped import GroupedProportionalPolicy

        assignment = community_groups(paper_network)
        policy = GroupedProportionalPolicy(
            groups=sorted(set(assignment.values())), assignment=assignment
        )
        policy.process_all(paper_network.interactions)
        assert sum(policy.origins("v0").as_dict().values()) == pytest.approx(3.0)
