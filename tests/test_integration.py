"""End-to-end integration tests across modules.

These tests exercise realistic pipelines that combine the dataset
generators, the engine, several policies, the analyses and serialization —
the way a downstream user of the library would wire the pieces together.
"""

from __future__ import annotations

import pytest

from repro import (
    BudgetProportionalPolicy,
    FifoPolicy,
    LifoPolicy,
    NoProvenancePolicy,
    PathProvenance,
    ProportionalSparsePolicy,
    ProvenanceEngine,
    ReplayProvenance,
    SelectiveProportionalPolicy,
    datasets,
)
from repro.analysis.alerts import NeighbourOriginAlertRule
from repro.analysis.contributors import top_contributors, top_receivers
from repro.analysis.distribution import AccumulationTracker
from repro.analysis.flow import top_financiers
from repro.core.serialization import read_snapshot_json, write_snapshot_json


@pytest.fixture(scope="module")
def network():
    return datasets.load_preset("prosper", scale=0.05)


class TestFullPipeline:
    def test_stream_analyse_serialize_reload(self, network, tmp_path):
        """Run provenance, analyse the busiest vertex, round-trip to JSON."""
        tracker = AccumulationTracker(watched=top_receivers(network, 1))
        engine = ProvenanceEngine(ProportionalSparsePolicy(), observers=[tracker])
        stats = engine.run(network)
        assert stats.interactions == network.num_interactions

        busiest = tracker.watched_vertices()[0]
        financiers = top_financiers(engine, busiest, 5)
        assert financiers and financiers[0][1] > 0

        snapshot = engine.snapshot()
        path = tmp_path / "snapshot.json"
        write_snapshot_json(snapshot, path)
        reloaded = read_snapshot_json(path)
        assert reloaded.total_quantity() == pytest.approx(snapshot.total_quantity())
        assert reloaded.get(busiest).approx_equal(snapshot[busiest], rel_tol=1e-9)

    def test_alerting_pipeline_with_budget_policy(self, network):
        """Alert rule works on top of a scope-limited (budget) policy too."""
        threshold = 3.0 * network.average_quantity()
        rule = NeighbourOriginAlertRule(threshold, max_neighbour_fraction=0.5)
        engine = ProvenanceEngine(BudgetProportionalPolicy(capacity=20), observers=[rule])
        engine.run(network)
        for alert in rule.alerts:
            assert alert.buffered_quantity > threshold

    def test_selective_policy_agrees_with_full_on_tracked_vertices(self, network):
        tracked = top_contributors(network, 5)
        selective_engine = ProvenanceEngine(SelectiveProportionalPolicy(tracked))
        selective_engine.run(network)
        full_engine = ProvenanceEngine(ProportionalSparsePolicy())
        full_engine.run(network)
        busiest = top_receivers(network, 1)[0]
        for origin in tracked:
            assert selective_engine.origins(busiest).get(origin) == pytest.approx(
                full_engine.origins(busiest).get(origin), rel=1e-6, abs=1e-6
            )

    def test_lazy_and_proactive_agree_end_to_end(self, network):
        lazy_engine = ProvenanceEngine(ReplayProvenance(LifoPolicy))
        lazy_engine.run(network)
        proactive_engine = ProvenanceEngine(LifoPolicy())
        proactive_engine.run(network)
        busiest = top_receivers(network, 1)[0]
        assert lazy_engine.origins(busiest).approx_equal(
            proactive_engine.origins(busiest)
        )

    def test_path_tracking_pipeline(self, network):
        policy = FifoPolicy(track_paths=True)
        engine = ProvenanceEngine(policy)
        engine.run(network)
        provenance = PathProvenance(policy)
        statistics = provenance.statistics()
        assert statistics.entries > 0
        busiest = top_receivers(network, 1)[0]
        for record in provenance.paths_at(busiest):
            assert record.path[0] == record.origin

    def test_csv_round_trip_preserves_provenance(self, network, tmp_path):
        """Provenance computed from a CSV re-import matches the original."""
        from repro.datasets.io import read_network_csv, write_interactions_csv

        path = tmp_path / "prosper.csv"
        write_interactions_csv(network.interactions, path)
        reloaded = read_network_csv(path, vertex_type=int)

        original_engine = ProvenanceEngine(FifoPolicy())
        original_engine.run(network)
        reloaded_engine = ProvenanceEngine(FifoPolicy())
        reloaded_engine.run(reloaded)

        busiest = top_receivers(network, 1)[0]
        assert reloaded_engine.origins(busiest).approx_equal(
            original_engine.origins(busiest), rel_tol=1e-9, abs_tol=1e-9
        )

    def test_all_policies_conserve_total_quantity(self, network):
        """Cross-policy conservation on a realistic preset (not just random streams)."""
        reference = ProvenanceEngine(NoProvenancePolicy())
        reference.run(network)
        expected_total = sum(reference.buffer_totals().values())
        for policy in (
            FifoPolicy(),
            LifoPolicy(),
            ProportionalSparsePolicy(),
            BudgetProportionalPolicy(capacity=10),
        ):
            engine = ProvenanceEngine(policy)
            engine.run(network)
            total = sum(engine.buffer_totals().values())
            assert total == pytest.approx(expected_total, rel=1e-6)
