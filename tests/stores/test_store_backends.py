"""Unit tests of the provenance-store backends and the store spec."""

from __future__ import annotations

import copy
import os
import pickle

import numpy as np
import pytest

from repro.exceptions import StoreConfigurationError
from repro.stores import (
    DEFAULT_STORE_ENV,
    DenseNumpyStore,
    DictStore,
    ProvenanceStore,
    SqliteStore,
    StoreSpec,
    available_store_backends,
    resolve_store_spec,
)


_BACKEND_FACTORIES = {
    "dict": DictStore,
    "dense": lambda: DenseNumpyStore(3),
    "sqlite": lambda: SqliteStore(hot_capacity=4),
}


@pytest.fixture(params=sorted(_BACKEND_FACTORIES))
def store(request):
    """A fresh store of each backend; vectors have dimension 3."""
    instance = _BACKEND_FACTORIES[request.param]()
    yield instance
    instance.close()


class TestProtocol:
    """Shared contract: the same operations give the same answers everywhere."""

    def test_put_get_roundtrip(self, store):
        value = np.array([1.0, 2.0, 3.0])
        store.put("v", value)
        assert np.array_equal(store.get("v"), value)
        assert store.get("missing") is None
        assert store.get("missing", "fallback") == "fallback"

    def test_len_contains_iteration(self, store):
        for index in range(10):
            store.put(f"v{index}", np.full(3, float(index)))
        assert len(store) == 10
        assert "v3" in store and "nope" not in store
        assert set(store.keys()) == {f"v{i}" for i in range(10)}
        assert {key for key, _value in store.items()} == set(store.keys())

    def test_merge_accumulates(self, store):
        store.merge("v", np.array([1.0, 0.0, 2.0]))
        store.merge("v", np.array([0.5, 1.0, 0.0]))
        assert np.array_equal(store.get("v"), np.array([1.5, 1.0, 2.0]))

    def test_merge_many_matches_individual_merges(self, store):
        items = [("a", np.full(3, 1.0)), ("b", np.full(3, 2.0)), ("a", np.full(3, 0.25))]
        store.merge_many(items)
        assert np.array_equal(store.get("a"), np.full(3, 1.25))
        assert np.array_equal(store.get("b"), np.full(3, 2.0))

    def test_get_or_create(self, store):
        created = store.get_or_create("v", lambda: np.zeros(3))
        assert np.array_equal(created, np.zeros(3))
        created += 1.0  # in-place mutation must be visible on re-fetch
        assert np.array_equal(store.get("v"), np.ones(3))

    def test_evict_removes(self, store):
        store.put("v", np.full(3, 7.0))
        removed = store.evict("v")
        assert np.array_equal(removed, np.full(3, 7.0))
        assert "v" not in store and len(store) == 0
        assert store.evict("v") is None

    def test_snapshot_restore_roundtrip(self, store):
        for index in range(6):
            store.put(f"v{index}", np.full(3, float(index)))
        snapshot = store.snapshot()
        store.clear()
        assert len(store) == 0
        store.restore(snapshot)
        assert len(store) == 6
        assert np.array_equal(store.get("v4"), np.full(3, 4.0))

    def test_stats_entry_counts(self, store):
        for index in range(7):
            store.put(f"v{index}", np.zeros(3))
        stats = store.stats()
        assert stats.entries == 7
        assert stats.backend in available_store_backends()
        assert stats.to_dict()["entries"] == 7


class TestDictStore:
    def test_raw_dict_is_the_store(self):
        store = DictStore()
        raw = store.raw_dict()
        assert raw is store
        raw["v"] = 1.0
        assert store.get("v") == 1.0

    def test_scalar_merge(self):
        store = DictStore()
        store.merge("v", 2.0)
        store.merge("v", 0.5)
        assert store.get("v") == 2.5


class TestDenseNumpyStore:
    def test_views_share_matrix_memory(self):
        store = DenseNumpyStore(4)
        vector = store.get_or_create("v", None)
        vector[2] = 9.0
        assert store.get("v")[2] == 9.0

    def test_growth_preserves_rows(self):
        store = DenseNumpyStore(2, block_rows=2)
        for index in range(50):
            store.get_or_create(f"v{index}", None)[0] = float(index)
        for index in range(50):
            assert store.get(f"v{index}")[0] == float(index)

    def test_ensure_rows_makes_views_growth_safe(self):
        """The arena contract: reserve every row first, then fetch views.

        Growth reallocates the contiguous arena, so a view fetched before a
        later allocation is detached from the store.  Callers that hold
        views across allocations must pre-reserve all rows via
        ``ensure_rows`` — after which the held views stay live no matter how
        many of the reserved keys are materialised.
        """
        store = DenseNumpyStore(2, block_rows=2)
        keys = ["source"] + [f"v{index}" for index in range(20)]
        store.ensure_rows(keys)  # all growth happens here
        held = store.get_or_create("source", None)
        for key in keys[1:]:
            store.get_or_create(key, None)
        held[:] = 7.0  # write through the pre-fetch view
        assert np.array_equal(store.get("source"), np.full(2, 7.0))
        # Every row is a view of one contiguous arena.
        assert store.get("source").base is store.arena
        assert store.get("v19").base is store.arena

    def test_rows_are_arena_views(self):
        store = DenseNumpyStore(3)
        store.put("a", np.array([1.0, 2.0, 3.0]))
        store.put("b", np.array([4.0, 5.0, 6.0]))
        arena = store.arena
        assert arena is not None and arena.shape[1] == 3
        assert np.array_equal(arena[store.row_of("b")], [4.0, 5.0, 6.0])
        # Mutations through the arena surface through get() and vice versa.
        arena[store.row_of("a")][0] = 9.0
        assert store.get("a")[0] == 9.0

    def test_evicted_rows_are_recycled_zeroed(self):
        store = DenseNumpyStore(2, block_rows=2)
        store.get_or_create("a", None)[:] = 5.0
        store.evict("a")
        fresh = store.get_or_create("b", None)
        assert np.array_equal(fresh, np.zeros(2))

    def test_negative_dimension_rejected(self):
        with pytest.raises(StoreConfigurationError):
            DenseNumpyStore(-1)


class TestSqliteStore:
    def test_spills_beyond_hot_capacity(self):
        store = SqliteStore(hot_capacity=4)
        for index in range(20):
            store.put(index, {"origin": float(index)})
        stats = store.stats()
        assert stats.entries == 20
        assert stats.resident_entries <= 4
        assert stats.evictions >= 16
        assert stats.spilled_bytes > 0
        assert store.spill_path is not None and os.path.exists(store.spill_path)
        # every value faults back in intact
        for index in range(20):
            assert store.get(index) == {"origin": float(index)}
        assert store.stats().spill_reads >= 16
        store.close()

    def test_no_file_until_first_spill(self):
        store = SqliteStore(hot_capacity=8)
        for index in range(8):
            store.put(index, index * 1.0)
        assert store.spill_path is None
        store.put(99, 99.0)
        assert store.spill_path is not None
        store.close()

    def test_close_removes_spill_file(self):
        store = SqliteStore(hot_capacity=2)
        for index in range(10):
            store.put(index, float(index))
        path = store.spill_path
        store.close()
        assert not os.path.exists(path)

    def test_mutated_resident_value_spills_current_state(self):
        store = SqliteStore(hot_capacity=2)
        buffer = store.get_or_create("v", dict)
        buffer["a"] = 1.0  # mutate in place, no put()
        for index in range(5):  # push "v" out of the hot tier
            store.put(index, float(index))
        assert store.get("v") == {"a": 1.0}
        store.close()

    def test_pickle_roundtrip_preserves_all_tiers_and_counters(self):
        store = SqliteStore(hot_capacity=3)
        for index in range(12):
            store.put(index, {"value": float(index)})
        stats_before = store.stats()
        clone = pickle.loads(pickle.dumps(store))
        assert len(clone) == 12
        # counters reflect the original store, not the reload churn ...
        assert clone.stats().evictions == stats_before.evictions
        assert clone.spill_path != store.spill_path
        # ... and every value (both tiers) survives the round trip intact
        for index in range(12):
            assert clone.get(index) == {"value": float(index)}
        store.close()
        clone.close()

    def test_deepcopy_is_independent(self):
        store = SqliteStore(hot_capacity=3)
        for index in range(8):
            store.put(index, [float(index)])
        clone = copy.deepcopy(store)
        clone.get(0).append(99.0)
        clone.put("extra", 1.0)
        assert store.get(0) == [0.0]
        assert "extra" not in store
        store.close()
        clone.close()

    def test_hot_capacity_floor(self):
        with pytest.raises(StoreConfigurationError):
            SqliteStore(hot_capacity=1)


class TestStoreSpec:
    def test_resolution_order(self, monkeypatch):
        monkeypatch.delenv(DEFAULT_STORE_ENV, raising=False)
        assert resolve_store_spec(None).backend == "dict"
        monkeypatch.setenv(DEFAULT_STORE_ENV, "sqlite")
        assert resolve_store_spec(None).backend == "sqlite"
        # explicit names win over the environment
        assert resolve_store_spec("dense").backend == "dense"
        spec = StoreSpec("sqlite", {"hot_capacity": 7})
        assert resolve_store_spec(spec) is spec

    def test_unknown_backend_rejected(self):
        with pytest.raises(StoreConfigurationError):
            resolve_store_spec("redis")
        with pytest.raises(StoreConfigurationError):
            StoreSpec("sqlite", {"bogus_option": 1})

    def test_dense_spec_falls_back_without_dimension(self):
        spec = StoreSpec("dense")
        assert isinstance(spec.create("vectors", dimension=5), DenseNumpyStore)
        assert isinstance(spec.create("totals"), DictStore)

    def test_sqlite_spec_options_forwarded(self, tmp_path):
        spec = StoreSpec("sqlite", {"hot_capacity": 2, "directory": str(tmp_path)})
        store = spec.create("buffers")
        for index in range(6):
            store.put(index, float(index))
        assert store.spill_path.startswith(str(tmp_path))
        store.close()

    def test_every_backend_creates_a_store(self):
        for backend in available_store_backends():
            store = StoreSpec(backend).create("buffers")
            assert isinstance(store, ProvenanceStore)
            store.close()
