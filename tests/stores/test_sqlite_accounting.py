"""SqliteStore accounting: incremental entry counters and size-aware eviction."""

from __future__ import annotations

import pickle

import pytest

from repro.datasets.catalog import load_preset
from repro.exceptions import StoreConfigurationError
from repro.runtime import RunConfig, Runner
from repro.stores import DictStore, SqliteStore, StoreSpec


def fill(store, count, width=5):
    for i in range(count):
        store.put(i, list(range(i % width)))


class TestIncrementalEntryCounters:
    def test_entry_total_matches_full_scan_under_heavy_spill(self):
        store = SqliteStore(hot_capacity=4)
        fill(store, 200, width=9)
        assert store.stats().evictions > 0
        assert store.entry_total() == sum(len(v) for v in store.values())

    def test_entry_total_tracks_removals_and_overwrites(self):
        store = SqliteStore(hot_capacity=4)
        fill(store, 50)
        store.put(0, [1, 2, 3, 4, 5, 6, 7])   # overwrite (cold or hot)
        store.evict(1)
        store.get(2)                           # fault one entry back in
        assert store.entry_total() == sum(len(v) for v in store.values())

    def test_entry_total_does_not_touch_the_cold_tier(self):
        store = SqliteStore(hot_capacity=4)
        fill(store, 100)
        reads_before = store.stats().spill_reads
        store.entry_total()
        assert store.stats().spill_reads == reads_before

    def test_unsized_values_fall_back_to_scan(self):
        store = SqliteStore(hot_capacity=2)
        for i in range(10):
            store.put(i, float(i))  # floats have no len()
        assert store.entry_total(lambda _v: 1) == 10

    def test_custom_measure_bypasses_the_cache(self):
        store = SqliteStore(hot_capacity=4)
        fill(store, 30)
        expected = sum(len(v) * 2 for v in store.values())
        assert store.entry_total(lambda v: len(v) * 2) == expected

    def test_matches_dict_store_semantics(self):
        spilling, resident = SqliteStore(hot_capacity=4), DictStore()
        fill(spilling, 60)
        fill(resident, 60)
        assert spilling.entry_total() == resident.entry_total()

    def test_counters_survive_pickle_roundtrip(self):
        store = SqliteStore(hot_capacity=4)
        fill(store, 80)
        clone = pickle.loads(pickle.dumps(store))
        assert clone.entry_total() == store.entry_total()

    def test_clear_resets_counters(self):
        store = SqliteStore(hot_capacity=4)
        fill(store, 40)
        store.clear()
        assert store.entry_total() == 0


class TestEngineCadenceCrossCheck:
    """The O(log n) peak-tracking cadence stays correct on the spill backend."""

    def test_peak_and_sampled_entry_counts_match_dict_runs(self):
        network = load_preset("taxis", scale=0.1)
        dict_run = Runner(RunConfig(
            dataset=network, policy="fifo", sample_every=200
        )).run()
        spill_run = Runner(RunConfig(
            dataset=network, policy="fifo", sample_every=200,
            store=StoreSpec("sqlite", {"hot_capacity": 8}),
        )).run()
        assert dict_run.statistics.samples == spill_run.statistics.samples
        assert (
            dict_run.statistics.sampled_entry_counts
            == spill_run.statistics.sampled_entry_counts
        )
        assert (
            dict_run.statistics.peak_entry_count
            == spill_run.statistics.peak_entry_count
        )
        assert (
            dict_run.statistics.final_entry_count
            == spill_run.statistics.final_entry_count
        )


class TestSizeAwareEviction:
    def test_hot_bytes_budget_bounds_resident_serialized_size(self):
        store = SqliteStore(hot_capacity=10_000, hot_bytes=2_000)
        fill(store, 400, width=11)
        assert store.resident_bytes_estimate <= 2_000
        stats = store.stats()
        assert stats.evictions > 0
        assert stats.entries == 400  # nothing lost, only displaced

    def test_hot_bytes_preserves_contents_exactly(self):
        budgeted = SqliteStore(hot_capacity=10_000, hot_bytes=1_500)
        plain = DictStore()
        for i in range(200):
            value = list(range(i % 13))
            budgeted.put(i, list(value))
            plain.put(i, list(value))
        assert budgeted.snapshot() == plain.snapshot()

    def test_keeps_two_entries_resident_for_step_safety(self):
        # Even an absurdly small byte budget must leave two entries hot so
        # one engine step can mutate both endpoint values safely.
        store = SqliteStore(hot_capacity=16, hot_bytes=1)
        fill(store, 50)
        assert store.stats().resident_entries >= 2

    def test_spill_batch_amortises_writes(self):
        # With spill_batch=N the store evicts N LRU entries per overflow, so
        # resident occupancy dips below capacity after each batch.
        store = SqliteStore(hot_capacity=10, spill_batch=5)
        fill(store, 11)
        assert store.stats().resident_entries == 6  # 11 - 5 spilled in one go
        assert store.stats().entries == 11

    def test_invalid_options_rejected(self):
        with pytest.raises(StoreConfigurationError):
            SqliteStore(hot_bytes=0)
        with pytest.raises(StoreConfigurationError):
            SqliteStore(spill_batch=0)
        with pytest.raises(StoreConfigurationError):
            StoreSpec("dict", {"hot_bytes": 100})  # spill option on dict store

    def test_hot_bytes_run_equivalent_to_dict_run(self):
        network = load_preset("taxis", scale=0.05)

        def snapshot_dict(result):
            snapshot = result.snapshot()
            return {vertex: snapshot[vertex].as_dict() for vertex in snapshot}

        dict_run = Runner(RunConfig(dataset=network, policy="fifo")).run()
        budgeted = Runner(RunConfig(
            dataset=network, policy="fifo",
            store=StoreSpec("sqlite", {
                "hot_capacity": 64, "hot_bytes": 4_096, "spill_batch": 4,
            }),
        )).run()
        assert snapshot_dict(dict_run) == snapshot_dict(budgeted)
        assert budgeted.spilled_bytes > 0

    def test_hot_bytes_roundtrips_through_pickle(self):
        store = SqliteStore(hot_capacity=32, hot_bytes=1_000, spill_batch=3)
        fill(store, 100)
        clone = pickle.loads(pickle.dumps(store))
        assert clone.hot_bytes == 1_000
        assert clone.snapshot() == store.snapshot()
        assert clone.resident_bytes_estimate <= 1_000
