"""Checkpoint round-trips through every store backend.

Save → restore → continue must produce exactly the provenance of an
uninterrupted run, regardless of where the annotation state lives — in
particular for the SQLite store, whose checkpoint must be self-contained
(the spill file is *not* part of the checkpoint; its contents are).
"""

from __future__ import annotations

import pytest

from repro.core.checkpoint import (
    load_engine,
    load_policy,
    policy_store_snapshot,
    restore_policy_stores,
    save_engine,
    save_policy,
)
from repro.core.engine import ProvenanceEngine
from repro.datasets.catalog import load_preset
from repro.policies.registry import make_policy
from repro.stores import StoreSpec

BACKEND_SPECS = {
    "dict": StoreSpec("dict"),
    "dense": StoreSpec("dense"),
    "sqlite": StoreSpec("sqlite", {"hot_capacity": 8}),
}

POLICIES = ["noprov", "fifo", "lrb", "proportional-sparse", "proportional-dense"]


@pytest.fixture(scope="module")
def network():
    return load_preset("taxis", scale=0.05)


def _make(policy_name, backend, network):
    policy = make_policy(policy_name, store=BACKEND_SPECS[backend])
    policy.reset(network.vertices)
    return policy


def _snapshot(policy):
    return {
        vertex: policy.origins(vertex).as_dict() for vertex in policy.tracked_vertices()
    }


@pytest.mark.parametrize("backend", sorted(BACKEND_SPECS))
@pytest.mark.parametrize("policy_name", POLICIES)
def test_checkpoint_roundtrip_continues_identically(
    tmp_path, network, policy_name, backend
):
    interactions = network.interactions
    half = len(interactions) // 2
    path = tmp_path / "checkpoint.pickle"

    # Uninterrupted reference run.
    reference = _make(policy_name, backend, network)
    reference.process_all(interactions)

    # Run half, checkpoint, restore, continue with the rest.
    interrupted = _make(policy_name, backend, network)
    interrupted.process_all(interactions[:half])
    save_policy(interrupted, path)
    restored = load_policy(path)
    restored.process_all(interactions[half:])

    assert _snapshot(restored) == _snapshot(reference)
    assert {
        vertex: restored.buffer_total(vertex) for vertex in restored.tracked_vertices()
    } == {
        vertex: reference.buffer_total(vertex)
        for vertex in reference.tracked_vertices()
    }


@pytest.mark.parametrize("backend", sorted(BACKEND_SPECS))
def test_engine_checkpoint_roundtrip(tmp_path, network, backend):
    interactions = network.interactions
    half = len(interactions) // 2
    path = tmp_path / "engine.pickle"

    reference = ProvenanceEngine(_make("fifo", backend, network))
    reference.run(network, reset=False)

    engine = ProvenanceEngine(_make("fifo", backend, network))
    engine.run(interactions[:half], reset=False)
    save_engine(engine, path)
    resumed = load_engine(path)
    resumed.run(interactions[half:], reset=False)

    assert resumed.interactions_processed == len(interactions)
    assert {v: s.as_dict() for v, s in resumed.snapshot().items()} == {
        v: s.as_dict() for v, s in reference.snapshot().items()
    }


@pytest.mark.parametrize("source_backend", sorted(BACKEND_SPECS))
@pytest.mark.parametrize("target_backend", sorted(BACKEND_SPECS))
def test_store_snapshot_migrates_between_backends(
    network, source_backend, target_backend
):
    """policy_store_snapshot/restore_policy_stores move state across backends."""
    source = _make("proportional-sparse", source_backend, network)
    source.process_all(network.interactions)

    target = _make("proportional-sparse", target_backend, network)
    restore_policy_stores(target, policy_store_snapshot(source))

    assert _snapshot(target) == _snapshot(source)


def test_sqlite_checkpoint_is_self_contained(tmp_path, network):
    """Deleting the live spill file must not affect a saved checkpoint."""
    policy = _make("fifo", "sqlite", network)
    policy.process_all(network.interactions)
    expected = _snapshot(policy)
    assert any(
        stats.spilled_bytes > 0 for stats in policy.store_stats().values()
    ), "the run must actually spill for this test to mean anything"

    path = tmp_path / "checkpoint.pickle"
    save_policy(policy, path)
    for store in policy.stores().values():
        store.close()  # removes the live spill file

    restored = load_policy(path)
    assert _snapshot(restored) == expected
