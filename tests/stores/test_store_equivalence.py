"""Store backends must reproduce DictStore provenance exactly.

The acceptance bar of the store refactor, mirroring the batched==per-
interaction identity tests of the Runner refactor: for EVERY registered
policy, a run on ``DenseNumpyStore`` and on ``SqliteStore`` (with a tiny
hot capacity, so entries spill and fault constantly) produces origin sets
and buffer totals identical — not approximately, identically, float for
float — to the run on ``DictStore``, both per-interaction and batched.
"""

from __future__ import annotations

import pytest

from repro.core.interaction import Interaction
from repro.core.network import TemporalInteractionNetwork
from repro.datasets.catalog import load_preset
from repro.policies.registry import available_policies
from repro.runtime import RunConfig, Runner
from repro.stores import StoreSpec


@pytest.fixture(scope="module")
def preset_network():
    return load_preset("taxis", scale=0.05)


#: Structural parameters for the policies whose constructors require them.
STRUCTURAL_OPTIONS = {
    "proportional-budget": {"capacity": 20},
    "proportional-windowed": {"window": 150},
    "proportional-time-windowed": {"window": 50.0},
}

#: A hot capacity this small forces most entries of the taxis sample
#: through the spill path — several evictions and faults per vertex.
SPILL_HEAVY_SQLITE = StoreSpec("sqlite", {"hot_capacity": 8})


def _snapshot_dict(result):
    snapshot = result.snapshot()
    return {vertex: snapshot[vertex].as_dict() for vertex in snapshot}


def _run(network, policy_name, batch_size, store=None):
    config = RunConfig(
        dataset=network,
        policy=policy_name,
        policy_options=dict(STRUCTURAL_OPTIONS.get(policy_name, {})),
        store=store,
        batch_size=batch_size,
    )
    return Runner(config).run()


@pytest.mark.parametrize("policy_name", available_policies())
@pytest.mark.parametrize("store", ["dense", SPILL_HEAVY_SQLITE], ids=["dense", "sqlite"])
def test_backend_identical_to_dict_store(preset_network, policy_name, store):
    reference = _run(preset_network, policy_name, 1)
    reference_snapshot = _snapshot_dict(reference)
    reference_totals = reference.buffer_totals()

    per_item = _run(preset_network, policy_name, 1, store=store)
    assert _snapshot_dict(per_item) == reference_snapshot
    assert per_item.buffer_totals() == reference_totals

    batched = _run(preset_network, policy_name, 64, store=store)
    assert _snapshot_dict(batched) == reference_snapshot
    assert batched.buffer_totals() == reference_totals


@pytest.mark.parametrize("policy_name", ["fifo", "proportional-sparse", "noprov"])
def test_sqlite_entry_counts_match_dict_store(preset_network, policy_name):
    """Sampled entry counts see through the spill: totals count both tiers."""
    reference = _run(preset_network, policy_name, 1)
    spilled = _run(preset_network, policy_name, 1, store=SPILL_HEAVY_SQLITE)
    assert (
        spilled.statistics.final_entry_count == reference.statistics.final_entry_count
    )
    assert spilled.spilled_bytes > 0, "hot_capacity=8 must actually spill"


@pytest.mark.parametrize(
    "store",
    [StoreSpec("dense", {"block_rows": 4}), "dense", SPILL_HEAVY_SQLITE],
    ids=["dense-tiny-blocks", "dense", "sqlite"],
)
@pytest.mark.parametrize("policy_name", ["proportional-dense", "proportional-grouped"])
def test_dense_backend_identical_across_block_boundaries(store, policy_name):
    """Regression: dense-store block growth must not orphan held row views.

    A chain network touching 40 vertices crosses several 4-row blocks (and,
    at default settings, would also cross a naive fixed-capacity
    reallocation boundary); every relay fetches the source row *before* the
    destination row is allocated, so any growth-time view invalidation
    shows up as provenance mass diverging from the dict backend.
    """
    vertices = [f"v{i}" for i in range(40)]
    interactions = [
        Interaction(vertices[i], vertices[i + 1], float(i + 1), 1.0 + i % 3)
        for i in range(39)
    ]
    network = TemporalInteractionNetwork.from_interactions(interactions, name="chain")
    options = {"num_groups": 6} if policy_name == "proportional-grouped" else {}
    reference = Runner(
        RunConfig(dataset=network, policy=policy_name, policy_options=dict(options))
    ).run()
    dense = Runner(
        RunConfig(
            dataset=network,
            policy=policy_name,
            policy_options=dict(options),
            store=store,
        )
    ).run()
    assert _snapshot_dict(dense) == _snapshot_dict(reference)
    assert dense.buffer_totals() == reference.buffer_totals()


@pytest.mark.parametrize("store", ["dense", SPILL_HEAVY_SQLITE], ids=["dense", "sqlite"])
def test_sharded_runs_identical_across_backends(preset_network, store):
    reference = Runner(
        RunConfig(dataset=preset_network, policy="fifo", shards=4)
    ).run()
    sharded = Runner(
        RunConfig(dataset=preset_network, policy="fifo", shards=4, store=store)
    ).run()
    assert _snapshot_dict(sharded) == _snapshot_dict(reference)
    assert sharded.buffer_totals() == reference.buffer_totals()
