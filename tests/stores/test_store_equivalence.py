"""Store backends must reproduce DictStore provenance exactly.

The acceptance bar of the store refactor, mirroring the batched==per-
interaction identity tests of the Runner refactor: for EVERY registered
policy, a run on ``DenseNumpyStore``, on ``MmapDenseStore`` and on
``SqliteStore`` (with a tiny hot capacity, so entries spill and fault
constantly) produces origin sets and buffer totals identical — not
approximately, identically, float for float — to the run on
``DictStore``, both per-interaction and batched.

The mmap tier carries an extra contract on top of live-run parity: a
checkpoint/resume round trip through the arena-snapshot sidecar must be
bit-identical to the uninterrupted dict run, torn or truncated snapshot
files must surface :class:`CheckpointCorruptedError` instead of silently
corrupt provenance, and repeated save/resume cycles must leave no stray
temp or stale sidecar files behind.
"""

from __future__ import annotations

import os

import pytest

from repro.core.checkpoint import load_engine, save_engine
from repro.core.interaction import Interaction
from repro.core.network import TemporalInteractionNetwork
from repro.datasets.catalog import load_preset
from repro.exceptions import CheckpointCorruptedError
from repro.policies.registry import available_policies
from repro.runtime import RunConfig, Runner
from repro.stores import MmapDenseStore, StoreSpec


@pytest.fixture(scope="module")
def preset_network():
    return load_preset("taxis", scale=0.05)


#: Structural parameters for the policies whose constructors require them.
STRUCTURAL_OPTIONS = {
    "proportional-budget": {"capacity": 20},
    "proportional-windowed": {"window": 150},
    "proportional-time-windowed": {"window": 50.0},
}

#: A hot capacity this small forces most entries of the taxis sample
#: through the spill path — several evictions and faults per vertex.
SPILL_HEAVY_SQLITE = StoreSpec("sqlite", {"hot_capacity": 8})


def _snapshot_dict(result):
    snapshot = result.snapshot()
    return {vertex: snapshot[vertex].as_dict() for vertex in snapshot}


def _run(network, policy_name, batch_size, store=None):
    config = RunConfig(
        dataset=network,
        policy=policy_name,
        policy_options=dict(STRUCTURAL_OPTIONS.get(policy_name, {})),
        store=store,
        batch_size=batch_size,
    )
    return Runner(config).run()


@pytest.mark.parametrize("policy_name", available_policies())
@pytest.mark.parametrize(
    "store", ["dense", "mmap", SPILL_HEAVY_SQLITE], ids=["dense", "mmap", "sqlite"]
)
def test_backend_identical_to_dict_store(preset_network, policy_name, store):
    reference = _run(preset_network, policy_name, 1)
    reference_snapshot = _snapshot_dict(reference)
    reference_totals = reference.buffer_totals()

    per_item = _run(preset_network, policy_name, 1, store=store)
    assert _snapshot_dict(per_item) == reference_snapshot
    assert per_item.buffer_totals() == reference_totals

    batched = _run(preset_network, policy_name, 64, store=store)
    assert _snapshot_dict(batched) == reference_snapshot
    assert batched.buffer_totals() == reference_totals


@pytest.mark.parametrize("policy_name", ["fifo", "proportional-sparse", "noprov"])
def test_sqlite_entry_counts_match_dict_store(preset_network, policy_name):
    """Sampled entry counts see through the spill: totals count both tiers."""
    reference = _run(preset_network, policy_name, 1)
    spilled = _run(preset_network, policy_name, 1, store=SPILL_HEAVY_SQLITE)
    assert (
        spilled.statistics.final_entry_count == reference.statistics.final_entry_count
    )
    assert spilled.spilled_bytes > 0, "hot_capacity=8 must actually spill"


@pytest.mark.parametrize(
    "store",
    [
        StoreSpec("dense", {"block_rows": 4}),
        "dense",
        StoreSpec("mmap", {"block_rows": 4}),
        SPILL_HEAVY_SQLITE,
    ],
    ids=["dense-tiny-blocks", "dense", "mmap-tiny-blocks", "sqlite"],
)
@pytest.mark.parametrize("policy_name", ["proportional-dense", "proportional-grouped"])
def test_dense_backend_identical_across_block_boundaries(store, policy_name):
    """Regression: dense-store block growth must not orphan held row views.

    A chain network touching 40 vertices crosses several 4-row blocks (and,
    at default settings, would also cross a naive fixed-capacity
    reallocation boundary); every relay fetches the source row *before* the
    destination row is allocated, so any growth-time view invalidation
    shows up as provenance mass diverging from the dict backend.
    """
    vertices = [f"v{i}" for i in range(40)]
    interactions = [
        Interaction(vertices[i], vertices[i + 1], float(i + 1), 1.0 + i % 3)
        for i in range(39)
    ]
    network = TemporalInteractionNetwork.from_interactions(interactions, name="chain")
    options = {"num_groups": 6} if policy_name == "proportional-grouped" else {}
    reference = Runner(
        RunConfig(dataset=network, policy=policy_name, policy_options=dict(options))
    ).run()
    dense = Runner(
        RunConfig(
            dataset=network,
            policy=policy_name,
            policy_options=dict(options),
            store=store,
        )
    ).run()
    assert _snapshot_dict(dense) == _snapshot_dict(reference)
    assert dense.buffer_totals() == reference.buffer_totals()


@pytest.mark.parametrize(
    "store", ["dense", "mmap", SPILL_HEAVY_SQLITE], ids=["dense", "mmap", "sqlite"]
)
def test_sharded_runs_identical_across_backends(preset_network, store):
    reference = Runner(
        RunConfig(dataset=preset_network, policy="fifo", shards=4)
    ).run()
    sharded = Runner(
        RunConfig(dataset=preset_network, policy="fifo", shards=4, store=store)
    ).run()
    assert _snapshot_dict(sharded) == _snapshot_dict(reference)
    assert sharded.buffer_totals() == reference.buffer_totals()


# ---------------------------------------------------------------------------
# mmap snapshot tier
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("policy_name", ["fifo", "proportional-dense"])
def test_mmap_shm_runs_identical_to_dict(preset_network, policy_name):
    """The mmap tier rides the shared-memory fabric like its dense parent."""
    reference = _run(preset_network, policy_name, 64)
    shm = Runner(
        RunConfig(
            dataset=preset_network,
            policy=policy_name,
            policy_options=dict(STRUCTURAL_OPTIONS.get(policy_name, {})),
            store="mmap",
            shards=2,
            shard_executor="processes",
            shared_memory=True,
        )
    ).run()
    assert _snapshot_dict(shm) == _snapshot_dict(reference)
    assert shm.buffer_totals() == reference.buffer_totals()


@pytest.mark.parametrize("policy_name", available_policies())
def test_mmap_checkpoint_resume_identical_to_dict(
    preset_network, policy_name, tmp_path
):
    """Interrupt + arena-sidecar resume == uninterrupted DictStore run.

    The checkpoint of an mmap-backed run carries the vectors in a
    ``.arena`` sidecar, not in the pickle; resuming maps that sidecar
    copy-on-write and must land on provenance bit-identical to a dict
    run that was never interrupted.
    """
    reference = _run(preset_network, policy_name, 64)
    checkpoint = tmp_path / "run.ckpt"
    half = preset_network.num_interactions // 2
    common = dict(
        dataset=preset_network,
        policy=policy_name,
        policy_options=dict(STRUCTURAL_OPTIONS.get(policy_name, {})),
        store="mmap",
        batch_size=64,
    )
    Runner(RunConfig(limit=half, checkpoint_path=checkpoint, **common)).run()
    resumed = Runner(RunConfig(resume_from=checkpoint, **common)).run()
    assert _snapshot_dict(resumed) == _snapshot_dict(reference)
    assert resumed.buffer_totals() == reference.buffer_totals()


def _small_mmap_store():
    import numpy as np

    store = MmapDenseStore(3)
    store.put("a", np.array([1.0, 0.5, 0.0]))
    store.put("b", np.array([0.0, 2.0, 4.0]))
    return store


def test_torn_and_truncated_snapshots_raise(tmp_path):
    import numpy as np

    store = _small_mmap_store()
    path = tmp_path / "snap.arena"
    info = store.snapshot_to(path)
    payload = path.read_bytes()

    # A clean snapshot restores (sanity for the corruption cases below).
    fresh = MmapDenseStore(3)
    fresh.restore_from(path, expected_crc=info["crc"], verify=True)
    assert np.array_equal(fresh.get("b"), [0.0, 2.0, 4.0])

    # Bad magic: not an arena snapshot at all.
    (tmp_path / "magic.arena").write_bytes(b"NOTMAGIC" + payload[8:])
    with pytest.raises(CheckpointCorruptedError):
        MmapDenseStore(3).restore_from(tmp_path / "magic.arena")

    # Torn mid-header and torn mid-arena: both truncations are caught
    # before any bytes are adopted.
    for name, cut in [("header.arena", 20), ("arena.arena", len(payload) - 8)]:
        (tmp_path / name).write_bytes(payload[:cut])
        with pytest.raises(CheckpointCorruptedError):
            MmapDenseStore(3).restore_from(tmp_path / name)

    # Wrong generation: the checkpoint's recorded CRC must match the file.
    with pytest.raises(CheckpointCorruptedError):
        MmapDenseStore(3).restore_from(path, expected_crc=(info["crc"] ^ 1))

    # Bit rot inside the arena region passes the size check but fails the
    # deep verification pass.
    flipped = bytearray(payload)
    flipped[-1] ^= 0xFF
    (tmp_path / "rot.arena").write_bytes(bytes(flipped))
    with pytest.raises(CheckpointCorruptedError):
        MmapDenseStore(3).restore_from(tmp_path / "rot.arena", verify=True)

    # Dimension mismatch: a valid snapshot for a differently-shaped store.
    with pytest.raises(CheckpointCorruptedError):
        MmapDenseStore(4).restore_from(path)

    # Missing file.
    with pytest.raises(CheckpointCorruptedError):
        MmapDenseStore(3).restore_from(tmp_path / "nope.arena")


def test_corrupt_sidecar_fails_engine_load(preset_network, tmp_path):
    """A checkpoint whose arena sidecar was damaged refuses to load."""
    checkpoint = tmp_path / "run.ckpt"
    Runner(
        RunConfig(
            dataset=preset_network,
            policy="proportional-dense",
            store="mmap",
            limit=200,
            checkpoint_path=checkpoint,
        )
    ).run()
    sidecars = sorted(tmp_path.glob("run.ckpt.*.arena"))
    assert sidecars, "mmap checkpoint must write an arena sidecar"
    load_engine(checkpoint)  # intact pair loads fine
    blob = sidecars[0].read_bytes()
    sidecars[0].write_bytes(blob[: len(blob) - 16])
    with pytest.raises(CheckpointCorruptedError):
        load_engine(checkpoint)
    sidecars[0].unlink()
    with pytest.raises(CheckpointCorruptedError):
        load_engine(checkpoint)


def test_mmap_cycles_leak_no_temp_or_stale_files(preset_network, tmp_path):
    """Save/resume cycles leave exactly one checkpoint + live sidecars.

    Temp files from the atomic writers must be cleaned up, and sidecar
    generations orphaned by newer saves must be pruned — otherwise a
    long-running checkpointed stream grows one arena file per save.
    """
    checkpoint = tmp_path / "cycle.ckpt"
    config = dict(
        dataset=preset_network, policy="proportional-dense", store="mmap"
    )
    result = Runner(
        RunConfig(limit=150, checkpoint_path=checkpoint, **config)
    ).run()
    source, destination = list(preset_network.vertices)[:2]
    engine = load_engine(checkpoint)
    # Several direct re-saves with evolving state: each save changes the
    # arena CRC, so a prune bug would leave one stale sidecar per cycle.
    for round_number in range(3):
        engine.policy.process(
            Interaction(source, destination, 1e9 + round_number, 1e6 + round_number)
        )
        save_engine(engine, checkpoint)
        engine = load_engine(checkpoint)
    entries = sorted(os.listdir(tmp_path))
    assert not [name for name in entries if ".tmp" in name], entries
    arena_files = [name for name in entries if name.endswith(".arena")]
    state = load_engine(checkpoint)  # the final pair stays loadable
    assert len(arena_files) <= 1, entries
    assert state.buffer_total(destination) == (
        result.buffer_totals().get(destination, 0.0) + 3e6 + 3
    )
