"""Shared fixtures for the test suite.

The most important fixture is ``paper_interactions``: the six-interaction
running example of the paper (Figure 3 / Tables 2-5), used as a golden
reference throughout the policy tests.
"""

from __future__ import annotations

from typing import Callable, List

import pytest

from repro.core.interaction import Interaction
from repro.core.network import TemporalInteractionNetwork
from repro.datasets.catalog import load_preset
from repro.datasets.schema import DatasetSpec, QuantityModel
from repro.datasets.synthetic import generate_network
from repro.policies.generation_time import LeastRecentlyBornPolicy, MostRecentlyBornPolicy
from repro.policies.no_provenance import NoProvenancePolicy
from repro.policies.proportional import ProportionalDensePolicy, ProportionalSparsePolicy
from repro.policies.receipt_order import FifoPolicy, LifoPolicy


@pytest.fixture
def paper_interactions() -> List[Interaction]:
    """The interaction sequence of the paper's running example (Figure 3a)."""
    return [
        Interaction("v1", "v2", 1, 3),
        Interaction("v2", "v0", 3, 5),
        Interaction("v0", "v1", 4, 3),
        Interaction("v1", "v2", 5, 7),
        Interaction("v2", "v1", 7, 2),
        Interaction("v2", "v0", 8, 1),
    ]


@pytest.fixture
def paper_network(paper_interactions) -> TemporalInteractionNetwork:
    """The running example as a TemporalInteractionNetwork."""
    return TemporalInteractionNetwork.from_interactions(
        paper_interactions, name="paper-example"
    )


@pytest.fixture
def small_network() -> TemporalInteractionNetwork:
    """A small deterministic synthetic network (fast enough for any test)."""
    spec = DatasetSpec(
        name="small",
        num_vertices=40,
        num_interactions=600,
        quantity_model=QuantityModel(kind="lognormal", mean=10.0, sigma=1.0),
        participation_skew=1.0,
        seed=42,
    )
    return generate_network(spec)


@pytest.fixture
def medium_network() -> TemporalInteractionNetwork:
    """A slightly larger synthetic network for scalability-flavoured tests."""
    spec = DatasetSpec(
        name="medium",
        num_vertices=150,
        num_interactions=3000,
        quantity_model=QuantityModel(kind="lognormal", mean=25.0, sigma=1.5),
        participation_skew=1.1,
        seed=43,
    )
    return generate_network(spec)


@pytest.fixture
def tiny_taxis_network() -> TemporalInteractionNetwork:
    """A down-scaled taxis preset (used by analysis and experiment tests)."""
    return load_preset("taxis", scale=0.05)


def _entry_policy_factories():
    return {
        "lrb": LeastRecentlyBornPolicy,
        "mrb": MostRecentlyBornPolicy,
        "fifo": FifoPolicy,
        "lifo": LifoPolicy,
    }


@pytest.fixture(params=sorted(_entry_policy_factories()))
def entry_policy_factory(request) -> Callable:
    """Factory for each entry-based (heap/queue/stack) policy."""
    return _entry_policy_factories()[request.param]


def _provenance_policy_factories(network: TemporalInteractionNetwork):
    return {
        "lrb": LeastRecentlyBornPolicy,
        "mrb": MostRecentlyBornPolicy,
        "fifo": FifoPolicy,
        "lifo": LifoPolicy,
        "proportional-sparse": ProportionalSparsePolicy,
        "proportional-dense": lambda: ProportionalDensePolicy(network.vertices),
    }


@pytest.fixture(
    params=["lrb", "mrb", "fifo", "lifo", "proportional-sparse", "proportional-dense"]
)
def any_provenance_policy(request, small_network):
    """Every full-provenance policy, instantiated for ``small_network``."""
    return _provenance_policy_factories(small_network)[request.param]()


@pytest.fixture
def noprov_policy() -> NoProvenancePolicy:
    return NoProvenancePolicy()
