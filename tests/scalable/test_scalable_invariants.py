"""Property-based invariants for the scope-limited proportional policies.

Complements ``tests/policies/test_invariants.py`` (which covers the full
policies of Section 4) with the restricted variants of Section 5: whatever
information they drop, they must never violate quantity conservation, and
the quantity they *do* attribute to named origins must be a subset of the
exact proportional attribution.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.interaction import Interaction
from repro.core.provenance import UNKNOWN_ORIGIN
from repro.policies.no_provenance import NoProvenancePolicy
from repro.policies.proportional import ProportionalSparsePolicy
from repro.scalable.budget import BudgetProportionalPolicy
from repro.scalable.grouped import GroupedProportionalPolicy
from repro.scalable.selective import SelectiveProportionalPolicy
from repro.scalable.windowing import WindowedProportionalPolicy

VERTICES = list(range(6))


@st.composite
def interaction_streams(draw, max_size: int = 50):
    size = draw(st.integers(min_value=1, max_value=max_size))
    interactions = []
    time = 0.0
    for _ in range(size):
        source = draw(st.sampled_from(VERTICES))
        destination = draw(st.sampled_from([v for v in VERTICES if v != source]))
        quantity = draw(
            st.floats(min_value=0.01, max_value=20.0, allow_nan=False, allow_infinity=False)
        )
        time += draw(st.floats(min_value=0.01, max_value=2.0, allow_nan=False))
        interactions.append(Interaction(source, destination, time, quantity))
    return interactions


def scalable_policies():
    return [
        SelectiveProportionalPolicy(VERTICES[:2]),
        GroupedProportionalPolicy.round_robin(VERTICES, 3),
        WindowedProportionalPolicy(window=7),
        BudgetProportionalPolicy(capacity=2),
    ]


def run(policy, interactions):
    policy.reset()
    policy.process_all(interactions)
    return policy


@settings(max_examples=40, deadline=None)
@given(interactions=interaction_streams())
def test_property_scalable_policies_conserve_buffer_totals(interactions):
    reference = run(NoProvenancePolicy(), interactions)
    for policy in scalable_policies():
        run(policy, interactions)
        for vertex in VERTICES:
            assert policy.buffer_total(vertex) == pytest.approx(
                reference.buffer_total(vertex), rel=1e-7, abs=1e-7
            ), policy.describe()
            assert policy.origins(vertex).total == pytest.approx(
                reference.buffer_total(vertex), rel=1e-7, abs=1e-7
            ), policy.describe()


@settings(max_examples=40, deadline=None)
@given(interactions=interaction_streams())
def test_property_selective_attribution_is_exact_for_tracked_vertices(interactions):
    tracked = VERTICES[:2]
    exact = run(ProportionalSparsePolicy(), interactions)
    selective = run(SelectiveProportionalPolicy(tracked), interactions)
    for vertex in VERTICES:
        exact_origins = exact.origins(vertex)
        selective_origins = selective.origins(vertex)
        for origin in tracked:
            assert selective_origins.get(origin) == pytest.approx(
                exact_origins.get(origin), rel=1e-6, abs=1e-6
            )


@settings(max_examples=40, deadline=None)
@given(interactions=interaction_streams())
def test_property_grouped_attribution_sums_exact_attribution(interactions):
    num_groups = 3
    exact = run(ProportionalSparsePolicy(), interactions)
    grouped = run(GroupedProportionalPolicy.round_robin(VERTICES, num_groups), interactions)
    for vertex in VERTICES:
        expected = {}
        for origin, quantity in exact.origins(vertex).items():
            group = VERTICES.index(origin) % num_groups
            expected[group] = expected.get(group, 0.0) + quantity
        actual = grouped.origins(vertex)
        for group in range(num_groups):
            assert actual.get(group) == pytest.approx(
                expected.get(group, 0.0), rel=1e-6, abs=1e-6
            )


@settings(max_examples=40, deadline=None)
@given(interactions=interaction_streams())
def test_property_budget_never_exceeds_capacity_and_underestimates_named_mass(interactions):
    capacity = 2
    exact = run(ProportionalSparsePolicy(), interactions)
    budget = run(BudgetProportionalPolicy(capacity=capacity), interactions)
    for vertex in VERTICES:
        origins = budget.origins(vertex)
        named = [origin for origin in origins.origins() if origin is not UNKNOWN_ORIGIN]
        assert len(named) <= capacity
        # A budget policy can only forget provenance, never invent it: the
        # quantity attributed to any named origin is at most the exact one.
        exact_origins = exact.origins(vertex)
        for origin in named:
            assert origins.get(origin) <= exact_origins.get(origin) + 1e-6


@settings(max_examples=40, deadline=None)
@given(interactions=interaction_streams(), window=st.integers(min_value=1, max_value=20))
def test_property_windowing_known_mass_never_exceeds_exact(interactions, window):
    exact = run(ProportionalSparsePolicy(), interactions)
    windowed = run(WindowedProportionalPolicy(window=window), interactions)
    for vertex in VERTICES:
        exact_origins = exact.origins(vertex)
        windowed_origins = windowed.origins(vertex)
        for origin, quantity in windowed_origins.items():
            if origin is UNKNOWN_ORIGIN:
                continue
            assert quantity <= exact_origins.get(origin) + 1e-6
