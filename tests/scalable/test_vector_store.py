"""Unit tests for the shared sparse vector store."""

from __future__ import annotations

import pytest

from repro.scalable.vector_store import SparseVectorStore


class TestBasicOperations:
    def test_vector_created_on_demand(self):
        store = SparseVectorStore()
        vector = store.vector("v")
        assert vector == {}
        vector["a"] = 1.0
        assert store.peek("v") == {"a": 1.0}

    def test_peek_returns_copy(self):
        store = SparseVectorStore()
        store.add("v", "a", 1.0)
        copy = store.peek("v")
        copy["a"] = 99
        assert store.peek("v") == {"a": 1.0}

    def test_peek_untouched_vertex(self):
        assert SparseVectorStore().peek("missing") == {}

    def test_add_accumulates(self):
        store = SparseVectorStore()
        store.add("v", "a", 1.0)
        store.add("v", "a", 2.0)
        assert store.peek("v") == {"a": 3.0}

    def test_add_zero_or_negative_ignored(self):
        store = SparseVectorStore()
        store.add("v", "a", 0.0)
        store.add("v", "a", -1.0)
        assert store.peek("v") == {}

    def test_replace_and_clear(self):
        store = SparseVectorStore()
        store.add("v", "a", 1.0)
        store.replace("v", {"b": 2.0})
        assert store.peek("v") == {"b": 2.0}
        store.clear()
        assert store.entry_count() == 0

    def test_origins_view(self):
        store = SparseVectorStore()
        store.add("v", "a", 2.0)
        assert store.origins("v").as_dict() == {"a": 2.0}

    def test_vertices_and_list_lengths(self):
        store = SparseVectorStore()
        store.add("v", "a", 1.0)
        store.add("w", "a", 1.0)
        store.add("w", "b", 1.0)
        assert set(store.vertices()) == {"v", "w"}
        assert dict(store.list_lengths()) == {"v": 1, "w": 2}
        assert store.entry_count() == 3


class TestTransfers:
    def test_transfer_all(self):
        store = SparseVectorStore()
        store.add("v", "a", 2.0)
        store.add("v", "b", 3.0)
        store.add("u", "a", 1.0)
        store.transfer_all("v", "u")
        assert store.peek("v") == {}
        assert store.peek("u") == {"a": 3.0, "b": 3.0}

    def test_transfer_fraction(self):
        store = SparseVectorStore()
        store.add("v", "a", 4.0)
        store.add("v", "b", 2.0)
        store.transfer_fraction("v", "u", 0.5)
        assert store.peek("u") == pytest.approx({"a": 2.0, "b": 1.0})
        assert store.peek("v") == pytest.approx({"a": 2.0, "b": 1.0})

    def test_transfer_fraction_out_of_range(self):
        store = SparseVectorStore()
        with pytest.raises(ValueError):
            store.transfer_fraction("v", "u", 1.5)

    def test_transfer_full_fraction_prunes_source(self):
        store = SparseVectorStore()
        store.add("v", "a", 4.0)
        store.transfer_fraction("v", "u", 1.0)
        assert store.peek("v") == {}
        assert store.peek("u") == {"a": 4.0}

    def test_apply_interaction_full_relay_with_generation(self):
        store = SparseVectorStore()
        store.add("v", "a", 2.0)
        store.apply_interaction("v", "u", 5.0, source_total=2.0)
        assert store.peek("u") == pytest.approx({"a": 2.0, "v": 3.0})
        assert store.peek("v") == {}

    def test_apply_interaction_partial(self):
        store = SparseVectorStore()
        store.add("v", "a", 8.0)
        store.apply_interaction("v", "u", 2.0, source_total=8.0)
        assert store.peek("u") == pytest.approx({"a": 2.0})
        assert store.peek("v") == pytest.approx({"a": 6.0})
