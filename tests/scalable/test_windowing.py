"""Unit tests for the windowing approach (Section 5.3.1)."""

from __future__ import annotations

import pytest

from repro.core.interaction import Interaction
from repro.exceptions import PolicyConfigurationError
from repro.policies.proportional import ProportionalSparsePolicy
from repro.scalable.windowing import WindowedProportionalPolicy


def chain(length, quantity=1.0, start_vertex=0):
    """A chain of interactions a->b->c->... each moving ``quantity`` units."""
    return [
        Interaction(start_vertex + i, start_vertex + i + 1, float(i + 1), quantity)
        for i in range(length)
    ]


class TestConfiguration:
    def test_window_must_be_positive(self):
        with pytest.raises(PolicyConfigurationError):
            WindowedProportionalPolicy(0)

    def test_reset_clears_counters(self):
        policy = WindowedProportionalPolicy(2)
        policy.process_all(chain(4))
        policy.reset()
        assert policy.interactions_processed == 0
        assert policy.resets_performed == 0
        assert policy.entry_count() == 0


class TestExactnessBeforeFirstReset:
    def test_matches_full_proportional_within_first_window(self, paper_interactions):
        windowed = WindowedProportionalPolicy(window=100)
        windowed.process_all(paper_interactions)
        full = ProportionalSparsePolicy()
        full.reset()
        full.process_all(paper_interactions)
        for vertex in ("v0", "v1", "v2"):
            assert windowed.origins(vertex).approx_equal(full.origins(vertex))
            assert windowed.known_fraction(vertex) == pytest.approx(1.0)


class TestResetBehaviour:
    def test_reset_counter_advances_every_window(self):
        policy = WindowedProportionalPolicy(window=5)
        policy.process_all(chain(17))
        assert policy.resets_performed == 3  # after interactions 5, 10, 15

    def test_provenance_within_last_window_is_exact(self):
        """Quantities generated within the last W interactions stay tracked."""
        window = 4
        policy = WindowedProportionalPolicy(window=window)
        # 2*window interactions of "noise", then a freshly generated quantity.
        noise = chain(2 * window, quantity=1.0)
        policy.process_all(noise)
        fresh = Interaction("fresh-origin", "target", 100.0, 7.0)
        policy.process(fresh)
        origins = policy.origins("target")
        assert origins.get("fresh-origin") == pytest.approx(7.0)

    def test_old_provenance_becomes_unknown(self):
        """Quantity generated more than 2W interactions ago loses its origin."""
        window = 3
        policy = WindowedProportionalPolicy(window=window)
        policy.process(Interaction("ancient", "holder", 1.0, 5.0))
        # Push far more than 2W unrelated interactions through other vertices.
        policy.process_all(
            [
                Interaction(f"x{i}", f"y{i}", float(i + 2), 1.0)
                for i in range(4 * window)
            ]
        )
        origins = policy.origins("holder")
        assert origins.total == pytest.approx(5.0)
        assert origins.unknown_quantity == pytest.approx(5.0)
        assert policy.known_fraction("holder") == pytest.approx(0.0)

    def test_buffer_totals_unaffected_by_resets(self, medium_network):
        windowed = WindowedProportionalPolicy(window=200)
        windowed.process_all(medium_network.interactions)
        full = ProportionalSparsePolicy()
        full.reset()
        full.process_all(medium_network.interactions)
        for vertex in windowed.tracked_vertices():
            assert windowed.buffer_total(vertex) == pytest.approx(
                full.buffer_total(vertex), rel=1e-7, abs=1e-7
            )

    def test_origin_mass_conserved_despite_resets(self, medium_network):
        """Known + unknown mass always equals the buffer total."""
        policy = WindowedProportionalPolicy(window=150)
        policy.process_all(medium_network.interactions)
        for vertex in policy.tracked_vertices():
            origins = policy.origins(vertex)
            assert origins.total == pytest.approx(
                policy.buffer_total(vertex), rel=1e-6, abs=1e-6
            )

    def test_smaller_window_never_more_memory(self, medium_network):
        small = WindowedProportionalPolicy(window=100)
        small.process_all(medium_network.interactions)
        large = WindowedProportionalPolicy(window=2000)
        large.process_all(medium_network.interactions)
        assert small.entry_count() <= large.entry_count() * 2  # loose sanity bound

    def test_known_fraction_defaults_to_one_for_empty_buffer(self):
        policy = WindowedProportionalPolicy(window=5)
        assert policy.known_fraction("untouched") == 1.0
