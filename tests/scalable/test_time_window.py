"""Unit tests for the time-based windowing variant."""

from __future__ import annotations

import pytest

from repro.core.interaction import Interaction
from repro.exceptions import PolicyConfigurationError
from repro.policies.proportional import ProportionalSparsePolicy
from repro.scalable.time_window import TimeWindowedProportionalPolicy


class TestConfiguration:
    def test_window_must_be_positive(self):
        with pytest.raises(PolicyConfigurationError):
            TimeWindowedProportionalPolicy(0.0)

    def test_reset_clears_state(self, paper_interactions):
        policy = TimeWindowedProportionalPolicy(window=2.0)
        policy.process_all(paper_interactions)
        policy.reset()
        assert policy.resets_performed == 0
        assert policy.entry_count() == 0


class TestExactnessWithinWindow:
    def test_no_reset_for_large_window(self, paper_interactions):
        windowed = TimeWindowedProportionalPolicy(window=1000.0)
        windowed.process_all(paper_interactions)
        full = ProportionalSparsePolicy()
        full.reset()
        full.process_all(paper_interactions)
        assert windowed.resets_performed == 0
        for vertex in ("v0", "v1", "v2"):
            assert windowed.origins(vertex).approx_equal(full.origins(vertex))

    def test_recent_generation_always_tracked(self):
        policy = TimeWindowedProportionalPolicy(window=10.0)
        # Old traffic far in the past, then a fresh quantity at t=100.
        policy.process_all(
            [Interaction(f"x{i}", f"y{i}", float(i), 1.0) for i in range(1, 50)]
        )
        policy.process(Interaction("fresh", "target", 100.0, 3.0))
        assert policy.origins("target").get("fresh") == pytest.approx(3.0)

    def test_old_provenance_becomes_unknown(self):
        policy = TimeWindowedProportionalPolicy(window=5.0)
        policy.process(Interaction("ancient", "holder", 1.0, 4.0))
        # Unrelated interactions crossing many window boundaries.
        policy.process_all(
            [Interaction(f"x{i}", f"y{i}", 1.0 + i * 2.0, 1.0) for i in range(1, 20)]
        )
        origins = policy.origins("holder")
        assert origins.total == pytest.approx(4.0)
        assert origins.unknown_quantity == pytest.approx(4.0)
        assert policy.known_fraction("holder") == pytest.approx(0.0)


class TestBoundaries:
    def test_reset_count_matches_elapsed_windows(self):
        policy = TimeWindowedProportionalPolicy(window=10.0)
        policy.process(Interaction("a", "b", 1.0, 1.0))
        policy.process(Interaction("a", "b", 35.0, 1.0))  # crosses boundaries at 10, 20, 30
        assert policy.resets_performed == 3

    def test_start_time_offsets_boundaries(self):
        policy = TimeWindowedProportionalPolicy(window=10.0, start_time=100.0)
        policy.process(Interaction("a", "b", 105.0, 1.0))
        policy.process(Interaction("a", "b", 109.0, 1.0))
        assert policy.resets_performed == 0
        policy.process(Interaction("a", "b", 111.0, 1.0))
        assert policy.resets_performed == 1

    def test_buffer_totals_unaffected_by_resets(self, medium_network):
        span = medium_network.time_span()
        window = (span[1] - span[0]) / 10
        policy = TimeWindowedProportionalPolicy(window=window)
        policy.process_all(medium_network.interactions)
        full = ProportionalSparsePolicy()
        full.reset()
        full.process_all(medium_network.interactions)
        for vertex in policy.tracked_vertices():
            assert policy.buffer_total(vertex) == pytest.approx(
                full.buffer_total(vertex), rel=1e-7, abs=1e-7
            )

    def test_origin_mass_conserved(self, medium_network):
        span = medium_network.time_span()
        policy = TimeWindowedProportionalPolicy(window=(span[1] - span[0]) / 8)
        policy.process_all(medium_network.interactions)
        for vertex in policy.tracked_vertices():
            assert policy.origins(vertex).total == pytest.approx(
                policy.buffer_total(vertex), rel=1e-6, abs=1e-6
            )

    def test_known_fraction_empty_buffer(self):
        policy = TimeWindowedProportionalPolicy(window=5.0)
        assert policy.known_fraction("untouched") == 1.0
