"""Unit tests for grouped proportional provenance (Section 5.2)."""

from __future__ import annotations

import pytest

from repro.core.interaction import Interaction
from repro.exceptions import PolicyConfigurationError
from repro.policies.proportional import ProportionalSparsePolicy
from repro.scalable.grouped import GroupedProportionalPolicy


class TestConfiguration:
    def test_requires_groups(self):
        with pytest.raises(PolicyConfigurationError):
            GroupedProportionalPolicy([], {})

    def test_round_robin_constructor(self):
        policy = GroupedProportionalPolicy.round_robin(["a", "b", "c", "d"], 2)
        assert policy.m == 2
        assert policy.group_of("a") == 0
        assert policy.group_of("b") == 1
        assert policy.group_of("c") == 0

    def test_round_robin_rejects_zero_groups(self):
        with pytest.raises(PolicyConfigurationError):
            GroupedProportionalPolicy.round_robin(["a"], 0)

    def test_callable_assignment(self):
        policy = GroupedProportionalPolicy(
            groups=["even", "odd"], assignment=lambda v: "even" if v % 2 == 0 else "odd"
        )
        assert policy.group_of(4) == "even"
        assert policy.group_of(3) == "odd"

    def test_unmapped_vertex_without_default_raises(self):
        policy = GroupedProportionalPolicy(groups=["g"], assignment={"a": "g"})
        with pytest.raises(PolicyConfigurationError):
            policy.group_of("unmapped")

    def test_unmapped_vertex_with_default(self):
        policy = GroupedProportionalPolicy(
            groups=["g", "rest"], assignment={"a": "g"}, default_group="rest"
        )
        assert policy.group_of("unmapped") == "rest"

    def test_invalid_default_group_rejected(self):
        with pytest.raises(PolicyConfigurationError):
            GroupedProportionalPolicy(groups=["g"], assignment={}, default_group="missing")

    def test_duplicate_groups_deduplicated(self):
        policy = GroupedProportionalPolicy(groups=["g", "g", "h"], assignment={}, default_group="g")
        assert policy.m == 2


class TestSemantics:
    def test_origins_labelled_by_group(self):
        policy = GroupedProportionalPolicy(
            groups=["left", "right"],
            assignment={"a": "left", "b": "right", "c": "right"},
        )
        policy.process(Interaction("a", "c", 1.0, 2.0))
        policy.process(Interaction("b", "c", 2.0, 3.0))
        assert policy.origins("c").as_dict() == pytest.approx({"left": 2.0, "right": 3.0})

    def test_group_mass_matches_full_proportional(self, small_network):
        num_groups = 4
        policy = GroupedProportionalPolicy.round_robin(small_network.vertices, num_groups)
        policy.process_all(small_network.interactions)
        full = ProportionalSparsePolicy()
        full.reset()
        full.process_all(small_network.interactions)
        group_of = {
            vertex: index % num_groups
            for index, vertex in enumerate(small_network.vertices)
        }
        for vertex in small_network.vertices:
            expected = {}
            for origin, quantity in full.origins(vertex).items():
                group = group_of[origin]
                expected[group] = expected.get(group, 0.0) + quantity
            actual = policy.origins(vertex).as_dict()
            for group in range(num_groups):
                assert actual.get(group, 0.0) == pytest.approx(
                    expected.get(group, 0.0), rel=1e-6, abs=1e-6
                )

    def test_buffer_totals_policy_independent(self, small_network):
        policy = GroupedProportionalPolicy.round_robin(small_network.vertices, 3)
        policy.process_all(small_network.interactions)
        full = ProportionalSparsePolicy()
        full.reset()
        full.process_all(small_network.interactions)
        for vertex in small_network.vertices:
            assert policy.buffer_total(vertex) == pytest.approx(
                full.buffer_total(vertex), rel=1e-7, abs=1e-7
            )

    def test_slot_quantities_include_zero_groups(self):
        policy = GroupedProportionalPolicy.round_robin(["a", "b"], 2)
        policy.process(Interaction("a", "b", 1.0, 1.0))
        quantities = policy.slot_quantities("b")
        assert set(quantities) == {0, 1}
        assert quantities[0] == pytest.approx(1.0)
        assert quantities[1] == 0.0

    def test_entry_count_scales_with_group_count(self, small_network):
        few = GroupedProportionalPolicy.round_robin(small_network.vertices, 2)
        few.process_all(small_network.interactions)
        many = GroupedProportionalPolicy.round_robin(small_network.vertices, 20)
        many.process_all(small_network.interactions)
        assert many.entry_count() > few.entry_count()
