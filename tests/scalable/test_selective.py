"""Unit tests for selective proportional provenance (Section 5.1)."""

from __future__ import annotations

import pytest

from repro.core.interaction import Interaction
from repro.core.provenance import UNKNOWN_ORIGIN
from repro.exceptions import PolicyConfigurationError
from repro.policies.proportional import ProportionalSparsePolicy
from repro.scalable.selective import SelectiveProportionalPolicy


class TestConfiguration:
    def test_requires_tracked_vertices(self):
        with pytest.raises(PolicyConfigurationError):
            SelectiveProportionalPolicy([])

    def test_deduplicates_tracked_vertices(self):
        policy = SelectiveProportionalPolicy(["a", "a", "b"])
        assert policy.k == 2
        assert policy.tracked == ["a", "b"]

    def test_slots_include_unknown(self):
        policy = SelectiveProportionalPolicy(["a", "b"])
        assert policy.num_slots == 3
        assert policy.slot_labels[-1] is UNKNOWN_ORIGIN

    def test_is_tracked(self):
        policy = SelectiveProportionalPolicy(["a"])
        assert policy.is_tracked("a")
        assert not policy.is_tracked("z")


class TestSemantics:
    def test_tracked_origin_recorded_individually(self):
        policy = SelectiveProportionalPolicy(["a"])
        policy.process(Interaction("a", "b", 1.0, 5.0))
        assert policy.origins("b").as_dict() == pytest.approx({"a": 5.0})

    def test_untracked_origin_goes_to_unknown_slot(self):
        policy = SelectiveProportionalPolicy(["a"])
        policy.process(Interaction("z", "b", 1.0, 5.0))
        origins = policy.origins("b")
        assert origins.unknown_quantity == pytest.approx(5.0)
        assert origins.known_total == 0.0

    def test_mixture_of_tracked_and_untracked(self):
        policy = SelectiveProportionalPolicy(["a"])
        policy.process(Interaction("a", "v", 1.0, 6.0))
        policy.process(Interaction("z", "v", 2.0, 3.0))
        policy.process(Interaction("v", "u", 3.0, 3.0))
        # v held 9 units (6 tracked from a, 3 unknown); 1/3 moves to u.
        origins = policy.origins("u")
        assert origins.get("a") == pytest.approx(2.0)
        assert origins.unknown_quantity == pytest.approx(1.0)

    def test_buffer_totals_match_full_policy(self, small_network):
        tracked = list(small_network.vertices)[:5]
        selective = SelectiveProportionalPolicy(tracked)
        selective.process_all(small_network.interactions)
        full = ProportionalSparsePolicy()
        full.reset()
        full.process_all(small_network.interactions)
        for vertex in small_network.vertices:
            assert selective.buffer_total(vertex) == pytest.approx(
                full.buffer_total(vertex), rel=1e-7, abs=1e-7
            )

    def test_tracked_quantities_match_full_proportional(self, small_network):
        """For tracked origins the decomposition equals full proportional."""
        tracked = list(small_network.vertices)[:8]
        selective = SelectiveProportionalPolicy(tracked)
        selective.process_all(small_network.interactions)
        full = ProportionalSparsePolicy()
        full.reset()
        full.process_all(small_network.interactions)
        for vertex in small_network.vertices:
            full_origins = full.origins(vertex)
            selective_origins = selective.origins(vertex)
            for origin in tracked:
                assert selective_origins.get(origin) == pytest.approx(
                    full_origins.get(origin), rel=1e-6, abs=1e-6
                )

    def test_unknown_slot_equals_untracked_mass(self, small_network):
        tracked = list(small_network.vertices)[:5]
        selective = SelectiveProportionalPolicy(tracked)
        selective.process_all(small_network.interactions)
        full = ProportionalSparsePolicy()
        full.reset()
        full.process_all(small_network.interactions)
        for vertex in small_network.vertices:
            untracked_mass = sum(
                quantity
                for origin, quantity in full.origins(vertex).items()
                if origin not in tracked
            )
            assert selective.origins(vertex).unknown_quantity == pytest.approx(
                untracked_mass, rel=1e-6, abs=1e-6
            )


class TestTopContributorConstructor:
    def test_for_top_contributors(self, small_network):
        policy = SelectiveProportionalPolicy.for_top_contributors(small_network, 4)
        assert policy.k == 4
        generated = small_network.generated_quantity_by_vertex()
        best = max(generated, key=generated.get)
        assert best in policy.tracked

    def test_entry_count_scales_with_k(self, small_network):
        small = SelectiveProportionalPolicy.for_top_contributors(small_network, 2)
        small.process_all(small_network.interactions)
        large = SelectiveProportionalPolicy.for_top_contributors(small_network, 10)
        large.process_all(small_network.interactions)
        assert large.entry_count() > small.entry_count()
