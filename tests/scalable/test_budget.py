"""Unit tests for budget-based proportional provenance (Section 5.3.2)."""

from __future__ import annotations

import pytest

from repro.core.interaction import Interaction
from repro.core.provenance import UNKNOWN_ORIGIN
from repro.exceptions import PolicyConfigurationError
from repro.policies.proportional import ProportionalSparsePolicy
from repro.scalable.budget import (
    BudgetProportionalPolicy,
    ShrinkStatistics,
    keep_by_priority,
    keep_largest,
)


def fan_in(target, count, quantity=1.0, start_time=1.0):
    """``count`` interactions delivering quantity to ``target`` from distinct origins."""
    return [
        Interaction(f"origin-{i}", target, start_time + i, quantity + i)
        for i in range(count)
    ]


class TestConfiguration:
    def test_capacity_must_be_positive(self):
        with pytest.raises(PolicyConfigurationError):
            BudgetProportionalPolicy(0)

    def test_keep_fraction_bounds(self):
        with pytest.raises(PolicyConfigurationError):
            BudgetProportionalPolicy(10, keep_fraction=0.0)
        with pytest.raises(PolicyConfigurationError):
            BudgetProportionalPolicy(10, keep_fraction=1.5)

    def test_reset_clears_statistics(self):
        policy = BudgetProportionalPolicy(2)
        policy.process_all(fan_in("v", 10))
        policy.reset()
        assert policy.shrink_statistics.total_shrinks == 0
        assert policy.entry_count() == 0


class TestShrinkCriteria:
    def test_keep_largest(self):
        items = [("a", 1.0), ("b", 5.0), ("c", 3.0)]
        assert keep_largest(items, 2) == [("b", 5.0), ("c", 3.0)]

    def test_keep_by_priority(self):
        criterion = keep_by_priority({"a": 10.0, "b": 1.0})
        items = [("a", 1.0), ("b", 5.0), ("c", 3.0)]
        kept = criterion(items, 2)
        assert kept[0][0] == "a"          # highest priority wins
        assert {origin for origin, _ in kept} == {"a", "b"}  # c has no priority

    def test_shrink_statistics_average(self):
        statistics = ShrinkStatistics()
        statistics.record("v")
        statistics.record("v")
        statistics.record("w")
        assert statistics.total_shrinks == 3
        assert statistics.vertices_shrunk() == 2
        assert statistics.average_shrinks() == pytest.approx(1.5)
        assert statistics.average_shrinks(over_vertices=6) == pytest.approx(0.5)
        assert ShrinkStatistics().average_shrinks() == 0.0


class TestBudgetEnforcement:
    def test_capacity_never_exceeded(self):
        capacity = 5
        policy = BudgetProportionalPolicy(capacity, keep_fraction=0.6)
        policy.process_all(fan_in("v", 40))
        named = [
            origin
            for origin in policy.origins("v").origins()
            if origin is not UNKNOWN_ORIGIN
        ]
        assert len(named) <= capacity

    def test_shrink_merges_removed_mass_into_unknown(self):
        policy = BudgetProportionalPolicy(3, keep_fraction=0.67)
        interactions = fan_in("v", 6, quantity=1.0)
        policy.process_all(interactions)
        origins = policy.origins("v")
        total_delivered = sum(r.quantity for r in interactions)
        assert origins.total == pytest.approx(total_delivered)
        assert origins.unknown_quantity > 0

    def test_no_shrink_when_under_capacity(self, paper_interactions):
        policy = BudgetProportionalPolicy(100)
        policy.process_all(paper_interactions)
        assert policy.shrink_statistics.total_shrinks == 0
        # Without shrinks the result is exact full proportional provenance.
        full = ProportionalSparsePolicy()
        full.reset()
        full.process_all(paper_interactions)
        for vertex in ("v0", "v1", "v2"):
            assert policy.origins(vertex).approx_equal(full.origins(vertex))

    def test_keep_largest_preserves_biggest_contributors(self):
        policy = BudgetProportionalPolicy(3, keep_fraction=0.67, criterion=keep_largest)
        policy.process_all(fan_in("v", 8, quantity=1.0))
        origins = policy.origins("v")
        # The largest contributor (origin-7, quantity 8.0) must survive.
        assert origins.get("origin-7") == pytest.approx(8.0)

    def test_buffer_totals_unaffected_by_budget(self, medium_network):
        policy = BudgetProportionalPolicy(5)
        policy.process_all(medium_network.interactions)
        full = ProportionalSparsePolicy()
        full.reset()
        full.process_all(medium_network.interactions)
        for vertex in policy.tracked_vertices():
            assert policy.buffer_total(vertex) == pytest.approx(
                full.buffer_total(vertex), rel=1e-7, abs=1e-7
            )

    def test_origin_mass_conserved(self, medium_network):
        policy = BudgetProportionalPolicy(5)
        policy.process_all(medium_network.interactions)
        for vertex in policy.tracked_vertices():
            assert policy.origins(vertex).total == pytest.approx(
                policy.buffer_total(vertex), rel=1e-6, abs=1e-6
            )

    def test_larger_budget_more_accurate(self, medium_network):
        """Known (non-UNKNOWN) fraction grows with the budget C."""
        small = BudgetProportionalPolicy(2)
        small.process_all(medium_network.interactions)
        large = BudgetProportionalPolicy(200)
        large.process_all(medium_network.interactions)

        def total_known(policy):
            return sum(
                policy.origins(vertex).known_total for vertex in policy.tracked_vertices()
            )

        assert total_known(large) >= total_known(small)

    def test_larger_budget_fewer_shrinks(self, medium_network):
        small = BudgetProportionalPolicy(2)
        small.process_all(medium_network.interactions)
        large = BudgetProportionalPolicy(500)
        large.process_all(medium_network.interactions)
        assert large.shrink_statistics.total_shrinks <= small.shrink_statistics.total_shrinks

    def test_known_fraction_bounds(self, medium_network):
        policy = BudgetProportionalPolicy(10)
        policy.process_all(medium_network.interactions)
        for vertex in policy.tracked_vertices():
            assert 0.0 <= policy.known_fraction(vertex) <= 1.0 + 1e-9

    def test_non_empty_vertex_count(self, paper_interactions):
        policy = BudgetProportionalPolicy(10)
        policy.process_all(paper_interactions)
        assert policy.non_empty_vertex_count() == 3
