"""Unit tests for lazy (replay-based) provenance."""

from __future__ import annotations

import pytest

from repro.core.engine import ProvenanceEngine
from repro.core.interaction import Interaction
from repro.lazy.replay import ReplayProvenance
from repro.policies.generation_time import LeastRecentlyBornPolicy
from repro.policies.receipt_order import FifoPolicy, LifoPolicy


class TestLazySemantics:
    def test_matches_proactive_fifo(self, paper_interactions):
        lazy = ReplayProvenance(FifoPolicy)
        lazy.reset()
        lazy.process_all(paper_interactions)

        proactive = FifoPolicy()
        proactive.reset()
        proactive.process_all(paper_interactions)

        for vertex in ("v0", "v1", "v2"):
            assert lazy.buffer_total(vertex) == pytest.approx(proactive.buffer_total(vertex))
            assert lazy.origins(vertex).approx_equal(proactive.origins(vertex))

    def test_matches_proactive_other_policies(self, paper_interactions):
        for factory in (LifoPolicy, LeastRecentlyBornPolicy):
            lazy = ReplayProvenance(factory)
            lazy.reset()
            lazy.process_all(paper_interactions)
            proactive = factory()
            proactive.reset()
            proactive.process_all(paper_interactions)
            assert lazy.origins("v0").approx_equal(proactive.origins("v0"))

    def test_works_with_engine(self, paper_network):
        engine = ProvenanceEngine(ReplayProvenance(FifoPolicy))
        engine.run(paper_network)
        assert engine.buffer_total("v0") == pytest.approx(3.0)

    def test_tracked_vertices_delegate(self, paper_interactions):
        lazy = ReplayProvenance(FifoPolicy)
        lazy.reset()
        lazy.process_all(paper_interactions)
        assert set(lazy.tracked_vertices()) == {"v0", "v1", "v2"}


class TestReplayCaching:
    def test_queries_without_new_interactions_replay_once(self, paper_interactions):
        lazy = ReplayProvenance(FifoPolicy)
        lazy.reset()
        lazy.process_all(paper_interactions)
        lazy.origins("v0")
        lazy.origins("v1")
        lazy.buffer_total("v2")
        assert lazy.replay_count == 1

    def test_new_interaction_invalidates_cache(self, paper_interactions):
        lazy = ReplayProvenance(FifoPolicy)
        lazy.reset()
        lazy.process_all(paper_interactions)
        lazy.origins("v0")
        lazy.process(Interaction("v0", "v1", 10.0, 1.0))
        lazy.origins("v0")
        assert lazy.replay_count == 2

    def test_log_length_and_entry_count(self, paper_interactions):
        lazy = ReplayProvenance(FifoPolicy)
        lazy.reset()
        lazy.process_all(paper_interactions)
        assert lazy.log_length == 6
        assert lazy.entry_count() == 6

    def test_reset_clears_log_and_cache(self, paper_interactions):
        lazy = ReplayProvenance(FifoPolicy)
        lazy.reset()
        lazy.process_all(paper_interactions)
        lazy.origins("v0")
        lazy.reset()
        assert lazy.log_length == 0
        assert lazy.replay_count == 0
        assert lazy.buffer_total("v0") == 0.0


class TestTimeTravel:
    def test_replay_at_prefix(self, paper_interactions):
        lazy = ReplayProvenance(FifoPolicy)
        lazy.reset()
        lazy.process_all(paper_interactions)
        # State after the first two interactions (Table 2, row 2).
        past = lazy.replay_at(2)
        assert past.buffer_total("v0") == pytest.approx(5.0)
        assert past.buffer_total("v2") == pytest.approx(0.0)

    def test_replay_at_zero_is_empty(self, paper_interactions):
        lazy = ReplayProvenance(FifoPolicy)
        lazy.reset()
        lazy.process_all(paper_interactions)
        assert list(lazy.replay_at(0).tracked_vertices()) == []

    def test_replay_at_out_of_range(self, paper_interactions):
        lazy = ReplayProvenance(FifoPolicy)
        lazy.reset()
        lazy.process_all(paper_interactions)
        with pytest.raises(IndexError):
            lazy.replay_at(100)

    def test_streaming_cost_is_flat(self, small_network):
        """Processing with the lazy policy stores nothing but the log."""
        lazy = ReplayProvenance(FifoPolicy)
        lazy.reset()
        lazy.process_all(small_network.interactions)
        assert lazy.entry_count() == small_network.num_interactions
        assert lazy.replay_count == 0  # no query issued yet
