"""Acceptance suite of the columnar fast path: bit-identical to object runs.

The equivalence bar of the columnar refactor: a run driven over
struct-of-array :class:`InteractionBlock` batches — eager, sharded or
streaming, forced (``columnar=True``) or automatic — must produce origin
sets, buffer totals and entry-count samples identical (float for float,
position for position) to the object run on the same stream, for EVERY
registered policy, on the dict store and on the SQLite spill store (where
the materialising adapter carries the blocks).  The interner must survive
checkpoint/resume.
"""

from __future__ import annotations

import pytest

from repro.datasets.catalog import load_preset
from repro.datasets.io import read_interaction_block, write_interactions_csv
from repro.policies.registry import available_policies
from repro.runtime import RunConfig, Runner
from repro.stores import StoreSpec

#: Structural parameters for the policies whose constructors require them.
STRUCTURAL_OPTIONS = {
    "proportional-budget": {"capacity": 20},
    "proportional-windowed": {"window": 150},
    "proportional-time-windowed": {"window": 50.0},
}

#: A tiny hot capacity forces heavy spilling; on the sqlite leg the columnar
#: run exercises the adapter fallback (kernels need dict-backed state).
STORES = {
    "dict": None,
    "sqlite": StoreSpec("sqlite", {"hot_capacity": 8}),
}


@pytest.fixture(scope="module")
def network():
    return load_preset("taxis", scale=0.05)


def snapshot_dict(result):
    snapshot = result.snapshot()
    return {vertex: snapshot[vertex].as_dict() for vertex in snapshot}


def run_config(network, policy_name, store, **extra):
    return RunConfig(
        dataset=network,
        policy=policy_name,
        policy_options=STRUCTURAL_OPTIONS.get(policy_name, {}),
        store=STORES[store],
        **extra,
    )


def assert_equivalent(object_run, columnar_run, *, check_samples=True):
    assert object_run.statistics.interactions == columnar_run.statistics.interactions
    assert snapshot_dict(object_run) == snapshot_dict(columnar_run)
    assert dict(object_run.buffer_totals()) == dict(columnar_run.buffer_totals())
    assert (
        object_run.statistics.final_entry_count
        == columnar_run.statistics.final_entry_count
    )
    if check_samples:
        assert object_run.statistics.samples == columnar_run.statistics.samples
        assert (
            object_run.statistics.sampled_entry_counts
            == columnar_run.statistics.sampled_entry_counts
        )
        assert (
            object_run.statistics.peak_entry_count
            == columnar_run.statistics.peak_entry_count
        )


@pytest.mark.parametrize("store", sorted(STORES))
@pytest.mark.parametrize("policy_name", available_policies())
def test_eager_columnar_identical_to_object(network, policy_name, store):
    object_run = Runner(run_config(
        network, policy_name, store, columnar=False, sample_every=97
    )).run()
    columnar_run = Runner(run_config(
        network, policy_name, store, columnar=True, sample_every=97
    )).run()
    assert_equivalent(object_run, columnar_run)
    assert columnar_run.columnar_stats is not None
    assert columnar_run.columnar_stats["mode"] == "block"


@pytest.mark.parametrize("store", sorted(STORES))
@pytest.mark.parametrize("policy_name", available_policies())
def test_streaming_columnar_identical_to_object(network, policy_name, store):
    object_run = Runner(run_config(
        network, policy_name, store, columnar=False, micro_batch=61
    )).run()
    columnar_run = Runner(run_config(
        network, policy_name, store, columnar=True, micro_batch=61
    )).run()
    assert_equivalent(object_run, columnar_run)
    assert columnar_run.columnar_stats["mode"] == "stream"


@pytest.mark.parametrize("store", sorted(STORES))
@pytest.mark.parametrize("shard_by", ["components", "hash"])
@pytest.mark.parametrize("policy_name", available_policies())
def test_sharded_columnar_identical_to_object(network, policy_name, store, shard_by):
    object_run = Runner(run_config(
        network, policy_name, store, columnar=False, shards=3, shard_by=shard_by
    )).run()
    columnar_run = Runner(run_config(
        network, policy_name, store, columnar=True, shards=3, shard_by=shard_by
    )).run()
    assert_equivalent(object_run, columnar_run, check_samples=False)


@pytest.mark.parametrize("policy_name", available_policies())
def test_auto_columnar_identical_to_object(network, policy_name):
    """The default (columnar=None) must be bit-identical to columnar=False."""
    object_run = Runner(run_config(
        network, policy_name, "dict", columnar=False, sample_every=103
    )).run()
    auto_run = Runner(run_config(
        network, policy_name, "dict", sample_every=103
    )).run()
    assert_equivalent(object_run, auto_run)


def test_block_native_csv_identical_to_object(network, tmp_path):
    path = tmp_path / "stream.csv"
    write_interactions_csv(network.interactions, path)
    for policy_name in ("noprov", "fifo", "proportional-dense", "proportional-sparse"):
        object_run = Runner(RunConfig(
            dataset=str(path), vertex_type=int, policy=policy_name, columnar=False
        )).run()
        columnar_run = Runner(RunConfig(
            dataset=str(path), vertex_type=int, policy=policy_name, columnar=True
        )).run()
        assert_equivalent(object_run, columnar_run)
        # The block-native path never built a network or an object list.
        assert columnar_run.network is None
        assert columnar_run.columnar_stats["block_bytes"] > 0


def test_block_native_resume_slices_prefix(network, tmp_path):
    """Resumed columnar CSV runs stay block-native: the processed prefix is
    dropped with one zero-copy ``block.slice`` instead of replaying the
    source through the scheduler item by item."""
    path = tmp_path / "stream.csv"
    checkpoint = tmp_path / "native.ckpt"
    write_interactions_csv(network.interactions, path)
    total = network.num_interactions
    for policy_name in ("noprov", "fifo", "proportional-dense"):
        uninterrupted = Runner(RunConfig(
            dataset=str(path), vertex_type=int, policy=policy_name, columnar=True
        )).run()
        Runner(RunConfig(
            dataset=str(path), vertex_type=int, policy=policy_name, columnar=True,
            limit=total // 2, checkpoint_path=checkpoint,
        )).run()
        resumed = Runner(RunConfig(
            dataset=str(path), vertex_type=int, policy=policy_name, columnar=True,
            resume_from=checkpoint,
        )).run()
        # Block-native, not scheduler-driven: the fix under test.
        assert resumed.columnar_stats is not None
        assert resumed.columnar_stats["mode"] == "block"
        assert resumed.statistics.interactions == total - total // 2
        assert snapshot_dict(uninterrupted) == snapshot_dict(resumed)
        assert dict(uninterrupted.buffer_totals()) == dict(resumed.buffer_totals())
    # A resumed run with a limit processes exactly that many more rows.
    limited = Runner(RunConfig(
        dataset=str(path), vertex_type=int, policy="fifo", columnar=True,
        resume_from=checkpoint, limit=7,
    )).run()
    assert limited.statistics.interactions == 7


def test_block_native_ingest_matches_object_parsing(network, tmp_path):
    from repro.datasets.io import read_network_csv

    path = tmp_path / "stream.csv"
    write_interactions_csv(network.interactions, path)
    block = read_interaction_block(path, vertex_type=int)
    assert block.to_interactions() == network.interactions
    # Interner order equals the registration order of a network built from
    # the same file (first appearance, source before destination).
    assert block.interner.vertices == list(read_network_csv(path, vertex_type=int).vertices)


@pytest.mark.parametrize("store", sorted(STORES))
def test_columnar_resume_identical_to_uninterrupted(network, store, tmp_path):
    """Interner and kernel state survive the checkpoint/resume round trip."""
    checkpoint = tmp_path / "columnar.ckpt"
    uninterrupted = Runner(run_config(
        network, "fifo", store, columnar=True, micro_batch=64
    )).run()
    Runner(run_config(
        network, "fifo", store, columnar=True, micro_batch=64,
        limit=network.num_interactions // 2, checkpoint_path=checkpoint,
    )).run()
    resumed = Runner(run_config(
        network, "fifo", store, columnar=True, micro_batch=64,
        resume_from=checkpoint,
    )).run()
    assert snapshot_dict(uninterrupted) == snapshot_dict(resumed)
    assert dict(uninterrupted.buffer_totals()) == dict(resumed.buffer_totals())


def test_mixed_columnar_and_object_driving(network):
    """Alternating process_block and process_many stays consistent."""
    from repro.core.engine import ProvenanceEngine
    from repro.policies.registry import make_policy

    block = network.to_block()
    half = len(block) // 2

    reference = make_policy("fifo")
    reference.reset(network.vertices)
    reference.process_many(network.interactions)

    mixed = make_policy("fifo")
    mixed.reset(network.vertices)
    mixed.process_block(block.slice(0, half))
    mixed.process_many(network.interactions[half:])

    vertices = set(reference.tracked_vertices())
    assert vertices == set(mixed.tracked_vertices())
    for vertex in vertices:
        assert reference.buffer_total(vertex) == mixed.buffer_total(vertex)
        assert reference.origins(vertex).as_dict() == mixed.origins(vertex).as_dict()
    assert reference.entry_count() == mixed.entry_count()


def test_block_native_keeps_memory_ceiling_semantics(network, tmp_path):
    """Ceiling runs fall back to the object ingest so feasibility still works."""
    path = tmp_path / "stream.csv"
    write_interactions_csv(network.interactions, path)
    kwargs = dict(dataset=str(path), vertex_type=int, policy="noprov",
                  memory_ceiling_bytes=10)
    object_run = Runner(RunConfig(columnar=False, **kwargs)).run()
    columnar_run = Runner(RunConfig(columnar=True, **kwargs)).run()
    assert not object_run.feasible
    assert not columnar_run.feasible
    assert columnar_run.memory_bytes is not None


def test_block_native_periodic_checkpoints(network, tmp_path):
    """checkpoint_every is honoured (and validated) on the block-native path."""
    from repro.exceptions import RunConfigurationError

    path = tmp_path / "stream.csv"
    write_interactions_csv(network.interactions, path)
    with pytest.raises(RunConfigurationError):
        Runner(RunConfig(
            dataset=str(path), vertex_type=int, policy="fifo",
            columnar=True, checkpoint_every=100,
        )).run()
    checkpoint = tmp_path / "periodic.ckpt"
    Runner(RunConfig(
        dataset=str(path), vertex_type=int, policy="fifo", columnar=True,
        checkpoint_every=100, checkpoint_path=checkpoint,
        limit=150, batch_size=64,
    )).run()
    from repro.core.checkpoint import load_engine

    restored = load_engine(checkpoint)
    # The final save lands on the limit; a mid-run save happened at 100.
    assert restored.interactions_processed == 150


def test_auto_columnar_only_on_eager_network_runs(network):
    """Scheduler/stream runs keep the object path unless columnar is forced."""
    # Pin the dict store: auto mode depends on a kernel being available,
    # which the REPRO_DEFAULT_STORE=sqlite CI leg would otherwise disable.
    store = StoreSpec("dict")
    eager = Runner(RunConfig(dataset=network, policy="noprov", store=store)).run()
    assert eager.columnar_stats is not None
    streamed = Runner(RunConfig(
        dataset=network, policy="noprov", store=store, micro_batch=64
    )).run()
    assert streamed.columnar_stats is None
    forced = Runner(RunConfig(
        dataset=network, policy="noprov", store=store, micro_batch=64, columnar=True
    )).run()
    assert forced.columnar_stats is not None and forced.columnar_stats["mode"] == "stream"


def test_forced_columnar_respects_subclass_overrides(network):
    """A subclass overriding process_many never has its override bypassed."""
    from repro.policies.receipt_order import FifoPolicy

    calls = []

    class CountingFifo(FifoPolicy):
        def process_many(self, interactions):
            calls.append(len(interactions))
            super().process_many(interactions)

    policy = CountingFifo()
    assert not policy.has_columnar_kernel()
    result = Runner(RunConfig(dataset=network, policy=policy, columnar=True)).run()
    assert result.statistics.interactions == network.num_interactions
    assert sum(calls) == network.num_interactions
