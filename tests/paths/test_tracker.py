"""Unit tests for how-provenance (path tracking, Section 6)."""

from __future__ import annotations

import pytest

from repro.core.interaction import Interaction
from repro.exceptions import PolicyConfigurationError
from repro.paths.tracker import PathProvenance, PathRecord
from repro.policies.proportional import ProportionalSparsePolicy
from repro.policies.receipt_order import FifoPolicy, LifoPolicy


def relay_chain():
    """a generates 5 units which travel a -> b -> c -> d."""
    return [
        Interaction("a", "b", 1.0, 5.0),
        Interaction("b", "c", 2.0, 5.0),
        Interaction("c", "d", 3.0, 5.0),
    ]


class TestConfiguration:
    def test_requires_entry_based_policy(self):
        with pytest.raises(PolicyConfigurationError):
            PathProvenance(ProportionalSparsePolicy())

    def test_requires_track_paths_enabled(self):
        with pytest.raises(PolicyConfigurationError):
            PathProvenance(FifoPolicy(track_paths=False))


class TestPathRecording:
    def test_path_of_relayed_quantity(self):
        policy = FifoPolicy(track_paths=True)
        policy.reset()
        policy.process_all(relay_chain())
        records = PathProvenance(policy).paths_at("d")
        assert len(records) == 1
        record = records[0]
        assert record.origin == "a"
        assert record.quantity == pytest.approx(5.0)
        assert record.path == ("a", "b", "c")
        assert record.hops == 2

    def test_newborn_path_is_just_origin(self):
        policy = LifoPolicy(track_paths=True)
        policy.reset()
        policy.process(Interaction("a", "b", 1.0, 2.0))
        records = PathProvenance(policy).paths_at("b")
        assert records[0].path == ("a",)
        assert records[0].hops == 0

    def test_split_preserves_path(self):
        policy = FifoPolicy(track_paths=True)
        policy.reset()
        policy.process(Interaction("a", "b", 1.0, 5.0))
        policy.process(Interaction("b", "c", 2.0, 2.0))  # split: 2 go on, 3 stay
        provenance = PathProvenance(policy)
        at_c = provenance.paths_at("c")
        at_b = provenance.paths_at("b")
        assert at_c[0].path == ("a", "b")
        assert at_c[0].quantity == pytest.approx(2.0)
        assert at_b[0].path == ("a",)
        assert at_b[0].quantity == pytest.approx(3.0)

    def test_routes_from_filters_by_origin(self):
        policy = FifoPolicy(track_paths=True)
        policy.reset()
        policy.process_all(
            [
                Interaction("a", "v", 1.0, 1.0),
                Interaction("b", "v", 2.0, 1.0),
            ]
        )
        provenance = PathProvenance(policy)
        assert len(provenance.routes_from("a", "v")) == 1
        assert len(provenance.routes_from("b", "v")) == 1
        assert provenance.routes_from("z", "v") == []

    def test_quantity_by_route_merges_identical_routes(self):
        policy = FifoPolicy(track_paths=True)
        policy.reset()
        policy.process_all(
            [
                Interaction("a", "b", 1.0, 2.0),
                Interaction("a", "b", 2.0, 3.0),
            ]
        )
        by_route = PathProvenance(policy).quantity_by_route("b")
        assert by_route == pytest.approx({("a",): 5.0})

    def test_different_routes_stay_distinguishable(self):
        """Unlike proportional provenance, paths keep routes apart."""
        policy = FifoPolicy(track_paths=True)
        policy.reset()
        policy.process_all(
            [
                Interaction("a", "b", 1.0, 2.0),
                Interaction("a", "c", 2.0, 2.0),
                Interaction("b", "d", 3.0, 2.0),
                Interaction("c", "d", 4.0, 2.0),
            ]
        )
        by_route = PathProvenance(policy).quantity_by_route("d")
        assert by_route == pytest.approx({("a", "b"): 2.0, ("a", "c"): 2.0})

    def test_longest_path_at(self):
        policy = FifoPolicy(track_paths=True)
        policy.reset()
        policy.process_all(relay_chain() + [Interaction("x", "d", 4.0, 1.0)])
        longest = PathProvenance(policy).longest_path_at("d")
        assert longest.path == ("a", "b", "c")

    def test_longest_path_empty_buffer(self):
        policy = FifoPolicy(track_paths=True)
        policy.reset()
        assert PathProvenance(policy).longest_path_at("nowhere") is None


class TestStatistics:
    def test_statistics_counts_hops_and_entries(self):
        policy = FifoPolicy(track_paths=True)
        policy.reset()
        policy.process_all(relay_chain())
        statistics = PathProvenance(policy).statistics()
        assert statistics.entries == 1
        assert statistics.total_hops == 2
        assert statistics.total_path_vertices == 3
        assert statistics.average_path_length == pytest.approx(2.0)

    def test_statistics_empty(self):
        policy = FifoPolicy(track_paths=True)
        policy.reset()
        statistics = PathProvenance(policy).statistics()
        assert statistics.entries == 0
        assert statistics.average_path_length == 0.0

    def test_average_path_length_grows_with_relays(self, small_network):
        policy = LifoPolicy(track_paths=True)
        policy.reset()
        policy.process_all(small_network.interactions)
        statistics = PathProvenance(policy).statistics()
        assert statistics.entries > 0
        assert statistics.average_path_length >= 0.0

    def test_origins_unaffected_by_path_tracking(self, small_network):
        with_paths = LifoPolicy(track_paths=True)
        with_paths.reset()
        with_paths.process_all(small_network.interactions)
        without = LifoPolicy()
        without.reset()
        without.process_all(small_network.interactions)
        for vertex in without.tracked_vertices():
            assert with_paths.origins(vertex).approx_equal(without.origins(vertex))

    def test_path_record_dataclass(self):
        record = PathRecord(origin="a", quantity=1.0, path=("a", "b"))
        assert record.hops == 1
