"""Unit tests for the dataset preset catalog."""

from __future__ import annotations

import pytest

from repro.datasets.catalog import PRESETS, available_presets, get_spec, load_preset
from repro.exceptions import DatasetError


class TestCatalog:
    def test_five_paper_datasets_present(self):
        assert set(available_presets()) == {"bitcoin", "ctu", "prosper", "flights", "taxis"}

    def test_available_presets_sorted(self):
        assert available_presets() == sorted(available_presets())

    def test_get_spec_unknown_raises(self):
        with pytest.raises(DatasetError):
            get_spec("does-not-exist")

    def test_get_spec_scaling(self):
        base = get_spec("taxis")
        scaled = get_spec("taxis", scale=0.1)
        assert scaled.num_interactions < base.num_interactions
        assert scaled.density == pytest.approx(base.density, rel=0.2)

    def test_get_spec_reseeding(self):
        assert get_spec("taxis", seed=999).seed == 999
        assert get_spec("taxis").seed == PRESETS["taxis"].seed

    def test_all_presets_have_paper_statistics(self):
        for spec in PRESETS.values():
            assert spec.paper_statistics is not None
            assert len(spec.paper_statistics) == 3

    def test_density_ordering_matches_paper(self):
        """Flights/Taxis are dense (few vertices); Bitcoin/CTU are sparse."""
        densities = {name: get_spec(name).density for name in available_presets()}
        assert densities["flights"] > densities["taxis"] > densities["prosper"]
        assert densities["prosper"] > densities["ctu"]
        assert densities["prosper"] > densities["bitcoin"]
        assert densities["bitcoin"] < 10
        assert densities["flights"] > 100

    def test_vertex_count_ordering_matches_paper(self):
        vertices = {name: get_spec(name).num_vertices for name in available_presets()}
        assert (
            vertices["bitcoin"]
            > vertices["ctu"]
            > vertices["prosper"]
            > vertices["taxis"]
            > vertices["flights"]
        )


class TestLoadPreset:
    def test_load_small_scale(self):
        network = load_preset("taxis", scale=0.05)
        assert network.name == "taxis"
        assert network.num_interactions > 0
        assert network.num_vertices >= 10

    def test_load_is_deterministic(self):
        first = load_preset("flights", scale=0.02)
        second = load_preset("flights", scale=0.02)
        assert first.interactions == second.interactions

    def test_seed_override_changes_data(self):
        first = load_preset("flights", scale=0.02, seed=1)
        second = load_preset("flights", scale=0.02, seed=2)
        assert first.interactions != second.interactions

    def test_quantity_scale_roughly_matches_spec(self):
        network = load_preset("flights", scale=0.05)
        # Flights preset draws 50-200 passengers per interaction.
        assert 50 <= network.average_quantity() <= 200
