"""Unit and property tests for the synthetic TIN generator."""

from __future__ import annotations

import pytest

from repro.datasets.schema import DatasetSpec, QuantityModel
from repro.datasets.synthetic import generate_interactions, generate_network


def make_spec(**overrides):
    defaults = dict(
        name="synthetic-test",
        num_vertices=50,
        num_interactions=500,
        seed=7,
    )
    defaults.update(overrides)
    return DatasetSpec(**defaults)


class TestGeneration:
    def test_interaction_count(self):
        interactions = generate_interactions(make_spec())
        assert len(interactions) == 500

    def test_deterministic_given_seed(self):
        first = generate_interactions(make_spec(seed=11))
        second = generate_interactions(make_spec(seed=11))
        assert first == second

    def test_different_seeds_differ(self):
        first = generate_interactions(make_spec(seed=1))
        second = generate_interactions(make_spec(seed=2))
        assert first != second

    def test_timestamps_strictly_increasing(self):
        interactions = generate_interactions(make_spec())
        times = [r.time for r in interactions]
        assert all(earlier < later for earlier, later in zip(times, times[1:]))

    def test_no_self_loops(self):
        interactions = generate_interactions(make_spec())
        assert all(not r.is_self_loop for r in interactions)

    def test_vertices_within_universe(self):
        spec = make_spec(num_vertices=20)
        interactions = generate_interactions(spec)
        for interaction in interactions:
            assert 0 <= interaction.source < 20
            assert 0 <= interaction.destination < 20

    def test_quantities_positive(self):
        interactions = generate_interactions(make_spec())
        assert all(r.quantity > 0 for r in interactions)

    def test_uniform_int_quantities_in_range(self):
        spec = make_spec(
            quantity_model=QuantityModel(kind="uniform_int", low=50, high=200, mean=125)
        )
        interactions = generate_interactions(spec)
        assert all(50 <= r.quantity <= 200 for r in interactions)

    def test_lognormal_mean_roughly_matches(self):
        spec = make_spec(
            num_interactions=5000,
            quantity_model=QuantityModel(kind="lognormal", mean=20.0, sigma=1.0),
        )
        interactions = generate_interactions(spec)
        average = sum(r.quantity for r in interactions) / len(interactions)
        assert average == pytest.approx(20.0, rel=0.3)

    def test_pareto_quantities_heavy_tailed(self):
        spec = make_spec(
            num_interactions=3000,
            quantity_model=QuantityModel(kind="pareto", mean=100.0, alpha=1.5),
        )
        quantities = sorted(r.quantity for r in generate_interactions(spec))
        # Heavy tail: the max greatly exceeds the median.
        assert quantities[-1] > 10 * quantities[len(quantities) // 2]

    def test_participation_skew_creates_hubs(self):
        skewed = generate_interactions(make_spec(participation_skew=1.5, num_interactions=2000))
        flat = generate_interactions(make_spec(participation_skew=0.0, num_interactions=2000))

        def max_source_share(interactions):
            counts = {}
            for r in interactions:
                counts[r.source] = counts.get(r.source, 0) + 1
            return max(counts.values()) / len(interactions)

        assert max_source_share(skewed) > max_source_share(flat)


class TestGenerateNetwork:
    def test_network_registers_all_vertices(self):
        spec = make_spec(num_vertices=30)
        network = generate_network(spec)
        assert network.num_vertices == 30
        assert network.num_interactions == spec.num_interactions
        assert network.name == spec.name

    def test_network_interactions_sorted(self):
        network = generate_network(make_spec())
        times = [r.time for r in network.interactions]
        assert times == sorted(times)

    def test_edge_reuse_creates_repeated_edges(self):
        spec = make_spec(edge_reuse_probability=0.9, num_interactions=1000)
        network = generate_network(spec)
        # With heavy reuse, far fewer distinct edges than interactions.
        assert network.num_edges < network.num_interactions / 2
