"""Unit tests for CSV import/export of interactions."""

from __future__ import annotations

import pytest

from repro.core.interaction import Interaction
from repro.datasets.io import (
    read_interactions_csv,
    read_network_csv,
    write_interactions_csv,
)
from repro.exceptions import DatasetError


@pytest.fixture
def sample_interactions():
    return [
        Interaction("a", "b", 1.0, 2.5),
        Interaction("b", "c", 2.0, 3.0),
        Interaction("c", "a", 3.5, 0.25),
    ]


class TestRoundTrip:
    def test_write_and_read(self, tmp_path, sample_interactions):
        path = tmp_path / "interactions.csv"
        written = write_interactions_csv(sample_interactions, path)
        assert written == 3
        loaded = list(read_interactions_csv(path))
        assert loaded == sample_interactions

    def test_read_without_header(self, tmp_path):
        path = tmp_path / "raw.csv"
        path.write_text("a,b,1.0,2.0\nb,c,2.0,3.0\n")
        loaded = list(read_interactions_csv(path))
        assert len(loaded) == 2
        assert loaded[0].source == "a"

    def test_write_without_header(self, tmp_path, sample_interactions):
        path = tmp_path / "no_header.csv"
        write_interactions_csv(sample_interactions, path, include_header=False)
        assert len(list(read_interactions_csv(path))) == 3

    def test_integer_vertex_type(self, tmp_path):
        path = tmp_path / "ints.csv"
        write_interactions_csv([Interaction(1, 2, 1.0, 5.0)], path)
        loaded = list(read_interactions_csv(path, vertex_type=int))
        assert loaded[0].source == 1
        assert isinstance(loaded[0].source, int)

    def test_float_precision_preserved(self, tmp_path):
        quantity = 0.1234567890123456
        path = tmp_path / "precise.csv"
        write_interactions_csv([Interaction("a", "b", 1.0, quantity)], path)
        loaded = list(read_interactions_csv(path))
        assert loaded[0].quantity == quantity

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "blank.csv"
        path.write_text("source,destination,time,quantity\na,b,1.0,2.0\n\n\nb,c,2.0,3.0\n")
        assert len(list(read_interactions_csv(path))) == 2


class TestStreaming:
    def test_reader_is_lazy(self, tmp_path):
        # A malformed row at the end must not break consumption of the
        # prefix: rows are parsed on demand, not at call time.
        path = tmp_path / "tail_error.csv"
        path.write_text("a,b,1.0,2.0\nb,c,2.0,3.0\nbroken,row,not-a-time,1\n")
        reader = read_interactions_csv(path)
        assert next(reader).source == "a"
        assert next(reader).source == "b"
        with pytest.raises(DatasetError):
            next(reader)

    def test_limit_stops_before_bad_rows(self, tmp_path):
        path = tmp_path / "tail_error.csv"
        path.write_text("a,b,1.0,2.0\nb,c,2.0,3.0\nbroken,row,not-a-time,1\n")
        loaded = list(read_interactions_csv(path, limit=2))
        assert [i.source for i in loaded] == ["a", "b"]

    def test_limit_larger_than_file(self, tmp_path, sample_interactions):
        path = tmp_path / "small.csv"
        write_interactions_csv(sample_interactions, path)
        assert len(list(read_interactions_csv(path, limit=100))) == 3

    def test_network_reader_streams(self, tmp_path, sample_interactions, monkeypatch):
        # read_network_csv must feed the generator straight into the network
        # builder without materialising an intermediate list.
        import repro.datasets.io as io_module

        path = tmp_path / "net.csv"
        write_interactions_csv(sample_interactions, path)
        original = io_module.read_interactions_csv
        materialised = []

        def tracking_reader(*args, **kwargs):
            generator = original(*args, **kwargs)
            materialised.append(generator)
            return generator

        monkeypatch.setattr(io_module, "read_interactions_csv", tracking_reader)
        network = io_module.read_network_csv(path)
        assert network.num_interactions == 3
        # The generator was handed over, not converted: it is now exhausted.
        assert next(materialised[0], None) is None


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            list(read_interactions_csv(tmp_path / "nope.csv"))

    def test_too_few_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,1.0\n")
        with pytest.raises(DatasetError):
            list(read_interactions_csv(path))

    def test_unparseable_number(self, tmp_path):
        path = tmp_path / "bad2.csv"
        path.write_text("a,b,noon,5\n")
        with pytest.raises(DatasetError):
            list(read_interactions_csv(path))


class TestReadNetwork:
    def test_read_network(self, tmp_path, sample_interactions):
        path = tmp_path / "network.csv"
        write_interactions_csv(sample_interactions, path)
        network = read_network_csv(path)
        assert network.num_interactions == 3
        assert network.num_vertices == 3
        assert network.name == "network"

    def test_read_network_custom_name(self, tmp_path, sample_interactions):
        path = tmp_path / "network.csv"
        write_interactions_csv(sample_interactions, path)
        assert read_network_csv(path, name="custom").name == "custom"

    def test_preset_round_trip(self, tmp_path):
        from repro.datasets.catalog import load_preset

        network = load_preset("taxis", scale=0.02)
        path = tmp_path / "taxis.csv"
        write_interactions_csv(network.interactions, path)
        loaded = read_network_csv(path, vertex_type=int)
        assert loaded.num_interactions == network.num_interactions
        assert loaded.total_quantity() == pytest.approx(network.total_quantity())
