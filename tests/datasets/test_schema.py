"""Unit tests for dataset specifications."""

from __future__ import annotations

import pytest

from repro.datasets.schema import DatasetSpec, QuantityModel
from repro.exceptions import DatasetError


class TestQuantityModel:
    def test_valid_kinds(self):
        for kind in ("lognormal", "uniform_int", "pareto"):
            assert QuantityModel(kind=kind, mean=10.0).kind == kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(DatasetError):
            QuantityModel(kind="gaussian")

    def test_uniform_bounds_checked(self):
        with pytest.raises(DatasetError):
            QuantityModel(kind="uniform_int", low=10, high=1)

    def test_mean_must_be_positive(self):
        with pytest.raises(DatasetError):
            QuantityModel(mean=0.0)


class TestDatasetSpec:
    def base(self, **overrides):
        defaults = dict(name="test", num_vertices=100, num_interactions=1000)
        defaults.update(overrides)
        return DatasetSpec(**defaults)

    def test_density(self):
        assert self.base().density == 10.0

    def test_too_few_vertices_rejected(self):
        with pytest.raises(DatasetError):
            self.base(num_vertices=1)

    def test_too_few_interactions_rejected(self):
        with pytest.raises(DatasetError):
            self.base(num_interactions=0)

    def test_negative_skew_rejected(self):
        with pytest.raises(DatasetError):
            self.base(participation_skew=-0.5)

    def test_edge_reuse_probability_bounds(self):
        with pytest.raises(DatasetError):
            self.base(edge_reuse_probability=1.5)

    def test_scaled_preserves_density_roughly(self):
        spec = self.base()
        scaled = spec.scaled(0.5)
        assert scaled.num_vertices == 50
        assert scaled.num_interactions == 500
        assert scaled.density == pytest.approx(spec.density)

    def test_scaled_lower_bounds(self):
        scaled = self.base().scaled(0.001)
        assert scaled.num_vertices >= 10
        assert scaled.num_interactions >= 100

    def test_scaled_rejects_non_positive_factor(self):
        with pytest.raises(DatasetError):
            self.base().scaled(0.0)

    def test_scaled_keeps_other_fields(self):
        spec = self.base(seed=99, description="hello")
        scaled = spec.scaled(2.0)
        assert scaled.seed == 99
        assert scaled.description == "hello"
        assert scaled.num_interactions == 2000

    def test_spec_is_frozen(self):
        spec = self.base()
        with pytest.raises(AttributeError):
            spec.num_vertices = 5
