"""Unit tests for the timing helpers."""

from __future__ import annotations

import time

import pytest

from repro.metrics.timing import StageTimings, Timer


class TestTimer:
    def test_measures_elapsed_time(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.005

    def test_zero_before_use(self):
        assert Timer().elapsed == 0.0

    def test_survives_exceptions(self):
        timer = Timer()
        with pytest.raises(RuntimeError):
            with timer:
                raise RuntimeError("boom")
        assert timer.elapsed >= 0.0


class TestStageTimings:
    def test_record_and_total(self):
        timings = StageTimings()
        timings.record("load", 1.0)
        timings.record("run", 2.0)
        timings.record("load", 0.5)
        assert timings.total == pytest.approx(3.5)
        assert timings.stages["load"] == pytest.approx(1.5)

    def test_order_preserved(self):
        timings = StageTimings()
        timings.record("b", 1.0)
        timings.record("a", 1.0)
        assert [row["stage"] for row in timings.as_rows()] == ["b", "a"]

    def test_time_context_manager(self):
        timings = StageTimings()
        with timings.time("sleep"):
            time.sleep(0.01)
        assert timings.stages["sleep"] >= 0.005

    def test_as_rows_shape(self):
        timings = StageTimings()
        timings.record("x", 0.25)
        rows = timings.as_rows()
        assert rows == [{"stage": "x", "seconds": 0.25}]
