"""Unit tests for plain-text table rendering."""

from __future__ import annotations

from repro.metrics.tables import format_table, format_value


class TestFormatValue:
    def test_none_renders_as_dashes(self):
        assert format_value(None) == "--"

    def test_bool(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_float_precision(self):
        assert format_value(3.14159, float_digits=3) == "3.14"

    def test_zero_float(self):
        assert format_value(0.0) == "0"

    def test_large_float_compact(self):
        assert "e" in format_value(1.23456e9) or len(format_value(1.23456e9)) <= 12

    def test_string_passthrough(self):
        assert format_value("bitcoin") == "bitcoin"

    def test_int(self):
        assert format_value(42) == "42"


class TestFormatTable:
    def test_header_and_rows(self):
        rows = [{"dataset": "taxis", "runtime": 0.5}, {"dataset": "ctu", "runtime": 1.25}]
        text = format_table(rows)
        lines = text.splitlines()
        assert "dataset" in lines[0] and "runtime" in lines[0]
        assert "taxis" in text and "ctu" in text

    def test_title_line(self):
        text = format_table([{"a": 1}], title="Table X")
        assert text.splitlines()[0] == "Table X"

    def test_missing_cells_render_dashes(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3}])
        assert "--" in text
        assert "b" in text.splitlines()[0]

    def test_explicit_column_order(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b", "a"])
        header = text.splitlines()[0]
        assert header.index("b") < header.index("a")

    def test_empty_rows(self):
        text = format_table([], columns=["a", "b"])
        assert "a" in text

    def test_columns_aligned(self):
        rows = [{"name": "a", "value": 1}, {"name": "longer-name", "value": 22}]
        lines = format_table(rows).splitlines()
        # All data lines have the same column start for "value".
        header = lines[0]
        value_position = header.index("value")
        for line in lines[2:]:
            cell = line[value_position:].strip()
            assert cell in {"1", "22"}
