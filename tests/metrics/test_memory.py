"""Unit tests for memory accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import ProvenanceEngine
from repro.core.interaction import Interaction
from repro.exceptions import MemoryBudgetExceededError
from repro.metrics.memory import MemoryCeiling, deep_sizeof, format_bytes, policy_memory_bytes
from repro.policies.receipt_order import FifoPolicy


class TestDeepSizeof:
    def test_primitives(self):
        assert deep_sizeof(42) > 0
        assert deep_sizeof("hello") > 0
        assert deep_sizeof(None) > 0

    def test_containers_grow_with_content(self):
        small = deep_sizeof([1, 2, 3])
        large = deep_sizeof(list(range(1000)))
        assert large > small

    def test_dict_counts_keys_and_values(self):
        empty = deep_sizeof({})
        filled = deep_sizeof({f"key{i}": i for i in range(100)})
        assert filled > empty

    def test_numpy_array_counts_nbytes(self):
        array = np.zeros(10_000, dtype=np.float64)
        assert deep_sizeof(array) >= array.nbytes

    def test_shared_objects_counted_once(self):
        shared = list(range(1000))
        combined = deep_sizeof([shared, shared])
        single = deep_sizeof([shared])
        assert combined < 2 * single

    def test_objects_with_slots(self):
        from repro.core.buffer import FifoBuffer, BufferEntry

        buffer = FifoBuffer()
        empty_size = deep_sizeof(buffer)
        for index in range(100):
            buffer.push(BufferEntry(origin=index, quantity=1.0))
        assert deep_sizeof(buffer) > empty_size

    def test_policy_memory_grows_with_state(self, small_network):
        policy = FifoPolicy()
        policy.reset()
        before = policy_memory_bytes(policy)
        policy.process_all(small_network.interactions)
        assert policy_memory_bytes(policy) > before


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(512) == "512B"

    def test_kilobytes(self):
        assert format_bytes(2048) == "2.00KB"

    def test_megabytes(self):
        assert format_bytes(5 * 1024 * 1024) == "5.00MB"

    def test_gigabytes(self):
        assert format_bytes(3 * 1024**3) == "3.00GB"


class TestMemoryCeiling:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MemoryCeiling(0)
        with pytest.raises(ValueError):
            MemoryCeiling(100, check_every=0)

    def test_raises_when_exceeded(self, small_network):
        ceiling = MemoryCeiling(1, check_every=10)  # 1 byte: always exceeded
        engine = ProvenanceEngine(FifoPolicy(), observers=[ceiling])
        with pytest.raises(MemoryBudgetExceededError) as info:
            engine.run(small_network)
        assert info.value.used_bytes > info.value.ceiling_bytes

    def test_does_not_raise_under_generous_ceiling(self, small_network):
        ceiling = MemoryCeiling(10**9, check_every=50)
        engine = ProvenanceEngine(FifoPolicy(), observers=[ceiling])
        engine.run(small_network)
        assert ceiling.peak_bytes > 0

    def test_checks_only_every_n_interactions(self):
        calls = []
        ceiling = MemoryCeiling(10**9, check_every=3, measure=lambda p: calls.append(1) or 1)
        engine = ProvenanceEngine(FifoPolicy(), observers=[ceiling])
        engine.run([Interaction("a", "b", float(t), 1.0) for t in range(1, 10)])
        assert len(calls) == 3  # interactions 3, 6, 9
