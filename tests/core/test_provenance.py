"""Unit tests for OriginSet and ProvenanceSnapshot."""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, strategies as st

from repro.core.provenance import UNKNOWN_ORIGIN, OriginSet, ProvenanceSnapshot


class TestOriginSetBasics:
    def test_empty_set(self):
        origins = OriginSet()
        assert len(origins) == 0
        assert origins.total == 0.0
        assert origins.fractions() == {}
        assert origins.as_dict() == {}

    def test_add_and_get(self):
        origins = OriginSet()
        origins.add("a", 2.0)
        origins.add("a", 3.0)
        origins.add("b", 1.0)
        assert origins["a"] == 5.0
        assert origins.get("b") == 1.0
        assert origins.get("missing") == 0.0
        assert origins.total == 6.0

    def test_add_zero_is_ignored(self):
        origins = OriginSet()
        origins.add("a", 0.0)
        assert "a" not in origins
        assert len(origins) == 0

    def test_add_negative_rejected(self):
        with pytest.raises(ValueError):
            OriginSet().add("a", -1.0)

    def test_constructor_from_mapping(self):
        origins = OriginSet({"a": 1.0, "b": 2.0})
        assert origins.total == 3.0

    def test_contains_and_iter(self):
        origins = OriginSet({"a": 1.0, "b": 2.0})
        assert "a" in origins
        assert set(origins) == {"a", "b"}
        assert set(origins.origins()) == {"a", "b"}

    def test_equality(self):
        assert OriginSet({"a": 1.0}) == OriginSet({"a": 1.0})
        assert OriginSet({"a": 1.0}) != OriginSet({"a": 2.0})
        assert OriginSet({"a": 1.0}) != "not an origin set"


class TestOriginSetAnalyses:
    def test_fractions_sum_to_one(self):
        origins = OriginSet({"a": 1.0, "b": 3.0})
        fractions = origins.fractions()
        assert fractions["a"] == pytest.approx(0.25)
        assert fractions["b"] == pytest.approx(0.75)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_top_orders_by_quantity(self):
        origins = OriginSet({"a": 1.0, "b": 5.0, "c": 3.0})
        assert origins.top(2) == [("b", 5.0), ("c", 3.0)]

    def test_top_negative_rejected(self):
        with pytest.raises(ValueError):
            OriginSet().top(-1)

    def test_top_more_than_available(self):
        origins = OriginSet({"a": 1.0})
        assert origins.top(10) == [("a", 1.0)]

    def test_merge(self):
        merged = OriginSet({"a": 1.0}).merge(OriginSet({"a": 2.0, "b": 1.0}))
        assert merged.as_dict() == {"a": 3.0, "b": 1.0}

    def test_merge_does_not_mutate_inputs(self):
        left = OriginSet({"a": 1.0})
        right = OriginSet({"b": 1.0})
        left.merge(right)
        assert left.as_dict() == {"a": 1.0}
        assert right.as_dict() == {"b": 1.0}

    def test_restricted_to(self):
        origins = OriginSet({"a": 1.0, "b": 2.0, "c": 3.0})
        assert origins.restricted_to(["a", "c"]).as_dict() == {"a": 1.0, "c": 3.0}

    def test_known_and_unknown_totals(self):
        origins = OriginSet({"a": 1.0, UNKNOWN_ORIGIN: 4.0})
        assert origins.known_total == 1.0
        assert origins.unknown_quantity == 4.0
        assert origins.total == 5.0

    def test_approx_equal(self):
        left = OriginSet({"a": 1.0, "b": 2.0})
        right = OriginSet({"a": 1.0 + 1e-12, "b": 2.0})
        assert left.approx_equal(right)
        assert not left.approx_equal(OriginSet({"a": 1.5, "b": 2.0}))


class TestUnknownOriginSentinel:
    def test_singleton(self):
        from repro.core.provenance import _UnknownOrigin

        assert _UnknownOrigin() is UNKNOWN_ORIGIN

    def test_pickle_round_trip_preserves_identity(self):
        assert pickle.loads(pickle.dumps(UNKNOWN_ORIGIN)) is UNKNOWN_ORIGIN

    def test_repr(self):
        assert repr(UNKNOWN_ORIGIN) == "UNKNOWN_ORIGIN"


class TestProvenanceSnapshot:
    def test_basic_access(self):
        snapshot = ProvenanceSnapshot(
            time=5.0,
            interactions_processed=10,
            origins={"v": OriginSet({"a": 1.0}), "w": OriginSet({"b": 2.0})},
        )
        assert snapshot.time == 5.0
        assert snapshot.interactions_processed == 10
        assert len(snapshot) == 2
        assert "v" in snapshot
        assert snapshot["v"].as_dict() == {"a": 1.0}
        assert snapshot.get("missing").total == 0.0
        assert set(snapshot) == {"v", "w"}

    def test_total_quantity(self):
        snapshot = ProvenanceSnapshot(
            time=0.0,
            interactions_processed=0,
            origins={"v": OriginSet({"a": 1.0}), "w": OriginSet({"b": 2.5})},
        )
        assert snapshot.total_quantity() == pytest.approx(3.5)

    def test_items(self):
        snapshot = ProvenanceSnapshot(0.0, 0, {"v": OriginSet({"a": 1.0})})
        assert dict(snapshot.items())["v"].total == 1.0


@given(
    quantities=st.dictionaries(
        st.integers(min_value=0, max_value=20),
        st.floats(min_value=0.001, max_value=1e6, allow_nan=False),
        max_size=20,
    )
)
def test_property_total_equals_sum_of_values(quantities):
    origins = OriginSet(quantities)
    assert origins.total == pytest.approx(sum(quantities.values()))


@given(
    quantities=st.dictionaries(
        st.integers(min_value=0, max_value=20),
        st.floats(min_value=0.001, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=20,
    )
)
def test_property_fractions_sum_to_one(quantities):
    fractions = OriginSet(quantities).fractions()
    assert sum(fractions.values()) == pytest.approx(1.0)
