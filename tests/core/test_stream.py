"""Unit tests for interaction stream utilities."""

from __future__ import annotations

import pytest

from repro.core.interaction import Interaction
from repro.core.stream import InteractionStream, merge_streams, take_prefix, time_window
from repro.exceptions import InvalidInteractionError


def make(times, source="a", destination="b"):
    return [Interaction(source, destination, t, 1.0) for t in times]


class TestInteractionStream:
    def test_sorts_unsorted_input(self):
        stream = InteractionStream(make([3, 1, 2]))
        assert [r.time for r in stream] == [1, 2, 3]

    def test_assume_sorted_passes_through_lazily(self):
        stream = InteractionStream(make([1, 2, 3]), assume_sorted=True)
        assert [r.time for r in stream] == [1, 2, 3]

    def test_assume_sorted_rejects_violation(self):
        stream = InteractionStream(make([2, 1]), assume_sorted=True)
        with pytest.raises(InvalidInteractionError):
            list(stream)

    def test_rejects_self_loops_when_disallowed(self):
        stream = InteractionStream(
            [Interaction("a", "a", 1.0, 1.0)], allow_self_loops=False
        )
        with pytest.raises(InvalidInteractionError):
            list(stream)

    def test_accepts_raw_tuples(self):
        stream = InteractionStream([("a", "b", 2.0, 1.0), ("a", "b", 1.0, 1.0)])
        assert [r.time for r in stream] == [1.0, 2.0]

    def test_can_be_iterated_twice(self):
        stream = InteractionStream(make([2, 1]))
        assert [r.time for r in stream] == [1, 2]
        assert [r.time for r in stream] == [1, 2]


class TestMergeStreams:
    def test_merges_two_sorted_streams(self):
        merged = list(merge_streams(make([1, 4, 6]), make([2, 3, 5], source="x")))
        assert [r.time for r in merged] == [1, 2, 3, 4, 5, 6]

    def test_merge_empty_streams(self):
        assert list(merge_streams([], [])) == []

    def test_merge_single_stream(self):
        merged = list(merge_streams(make([1, 2])))
        assert [r.time for r in merged] == [1, 2]

    def test_merge_rejects_unsorted_stream(self):
        with pytest.raises(InvalidInteractionError):
            list(merge_streams(make([2, 1])))

    def test_merge_three_streams_preserves_all(self):
        merged = list(merge_streams(make([1, 5]), make([2, 4]), make([3])))
        assert [r.time for r in merged] == [1, 2, 3, 4, 5]

    def test_merge_no_streams(self):
        assert list(merge_streams()) == []

    def test_equal_timestamps_across_streams_keep_argument_order(self):
        # Ties must come out in the order the streams were passed — the
        # merge is deterministic, not arbitrary.
        first = make([1, 2, 2], source="first")
        second = make([2, 2, 3], source="second")
        merged = list(merge_streams(first, second))
        assert [r.time for r in merged] == [1, 2, 2, 2, 2, 3]
        assert [r.source for r in merged if r.time == 2] == [
            "first", "first", "second", "second",
        ]

    def test_equal_timestamps_within_one_stream_keep_stream_order(self):
        stream = [
            Interaction("a", "b", 1.0, 1.0),
            Interaction("a", "c", 1.0, 2.0),
            Interaction("a", "d", 1.0, 3.0),
        ]
        merged = list(merge_streams(stream, make([])))
        assert [r.quantity for r in merged] == [1.0, 2.0, 3.0]

    def test_empty_streams_mixed_with_nonempty(self):
        merged = list(merge_streams([], make([1, 3]), [], make([2]), []))
        assert [r.time for r in merged] == [1, 2, 3]

    def test_merge_rejects_out_of_order_in_later_position(self):
        # The violation sits deep inside one input, after valid output has
        # already been produced: it must still be caught when reached.
        bad = make([1, 4, 2])
        merged = merge_streams(make([1, 2, 3]), bad)
        with pytest.raises(InvalidInteractionError):
            list(merged)

    def test_merge_yields_valid_prefix_before_raising(self):
        # Lazy error semantics: prefix consumers succeed over streams whose
        # violation lies beyond what they consume.
        merged = merge_streams(make([1, 4, 2]))
        assert next(merged).time == 1
        assert next(merged).time == 4
        with pytest.raises(InvalidInteractionError):
            next(merged)

    def test_merge_is_lazy_in_chunks(self):
        # The merge reads bounded lookahead per input, never whole streams:
        # taking a prefix of the merge must not drain a long generator.
        consumed = []

        def generator():
            for interaction in make(list(range(10_000))):
                consumed.append(interaction.time)
                yield interaction

        merged = merge_streams(generator())
        prefix = [next(merged).time for _ in range(10)]
        assert prefix == list(range(10))
        assert len(consumed) < 10_000


class TestPrefixAndWindow:
    def test_take_prefix(self):
        assert [r.time for r in take_prefix(make([1, 2, 3, 4]), 2)] == [1, 2]

    def test_take_prefix_zero(self):
        assert list(take_prefix(make([1, 2]), 0)) == []

    def test_take_prefix_more_than_available(self):
        assert len(list(take_prefix(make([1, 2]), 10))) == 2

    def test_take_prefix_negative_rejected(self):
        with pytest.raises(ValueError):
            list(take_prefix(make([1]), -1))

    def test_time_window_both_bounds(self):
        windowed = list(time_window(make([1, 2, 3, 4, 5]), start=2, end=4))
        assert [r.time for r in windowed] == [2, 3, 4]

    def test_time_window_unbounded_start(self):
        assert [r.time for r in time_window(make([1, 2, 3]), end=2)] == [1, 2]

    def test_time_window_unbounded_end(self):
        assert [r.time for r in time_window(make([1, 2, 3]), start=2)] == [2, 3]

    def test_time_window_empty_input(self):
        assert list(time_window([], start=0, end=10)) == []

    def test_time_window_boundaries_are_inclusive(self):
        windowed = list(time_window(make([1, 2, 3]), start=1, end=3))
        assert [r.time for r in windowed] == [1, 2, 3]

    def test_time_window_no_matches_inside_bounds(self):
        assert list(time_window(make([1, 2, 3]), start=1.4, end=1.6)) == []

    def test_time_window_equal_start_and_end(self):
        windowed = list(time_window(make([1, 2, 2, 3]), start=2, end=2))
        assert [r.time for r in windowed] == [2, 2]

    def test_time_window_stops_early_on_sorted_input(self):
        # The generator must stop consuming once past `end`.
        consumed = []

        def generator():
            for interaction in make([1, 2, 3, 4, 5]):
                consumed.append(interaction.time)
                yield interaction

        list(time_window(generator(), end=2))
        assert consumed == [1, 2, 3]  # stops right after passing the end bound
