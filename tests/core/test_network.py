"""Unit tests for the TemporalInteractionNetwork container."""

from __future__ import annotations

import pytest

from repro.core.interaction import Interaction
from repro.core.network import TemporalInteractionNetwork
from repro.exceptions import UnknownVertexError


class TestConstruction:
    def test_from_interactions_registers_vertices(self, paper_interactions):
        network = TemporalInteractionNetwork.from_interactions(paper_interactions)
        assert set(network.vertices) == {"v0", "v1", "v2"}
        assert network.num_vertices == 3
        assert network.num_interactions == 6

    def test_from_interactions_accepts_tuples(self):
        network = TemporalInteractionNetwork.from_interactions(
            [("a", "b", 1.0, 2.0), ("b", "c", 2.0, 3.0)]
        )
        assert network.num_interactions == 2
        assert "c" in network

    def test_explicit_isolated_vertices(self, paper_interactions):
        network = TemporalInteractionNetwork.from_interactions(
            paper_interactions, vertices=["isolated"]
        )
        assert "isolated" in network
        assert network.num_vertices == 4

    def test_add_vertex_idempotent(self):
        network = TemporalInteractionNetwork()
        network.add_vertex("a")
        network.add_vertex("a")
        assert network.num_vertices == 1

    def test_vertex_index_is_stable(self, paper_network):
        index = paper_network.vertex_index
        assert sorted(index.values()) == [0, 1, 2]
        assert index["v1"] == 0  # first vertex seen (source of first interaction)

    def test_len_and_iter(self, paper_network, paper_interactions):
        assert len(paper_network) == len(paper_interactions)
        assert list(paper_network) == sorted(paper_interactions, key=lambda r: r.time)


class TestEdges:
    def test_edge_history(self, paper_network):
        edge = paper_network.edge("v1", "v2")
        assert edge.events == ((1, 3), (5, 7))
        assert edge.total_quantity == 10
        assert len(edge) == 2

    def test_edge_missing_raises(self, paper_network):
        with pytest.raises(UnknownVertexError):
            paper_network.edge("v0", "v2")

    def test_edge_unknown_vertex_raises(self, paper_network):
        with pytest.raises(UnknownVertexError):
            paper_network.edge("v0", "missing")

    def test_num_edges(self, paper_network):
        # Edges of the running example: v1->v2, v2->v0, v0->v1, v2->v1.
        assert paper_network.num_edges == 4

    def test_edges_iteration(self, paper_network):
        pairs = {(edge.source, edge.destination) for edge in paper_network.edges()}
        assert pairs == {("v1", "v2"), ("v2", "v0"), ("v0", "v1"), ("v2", "v1")}

    def test_neighbors(self, paper_network):
        assert paper_network.out_neighbors("v2") == {"v0", "v1"}
        assert paper_network.in_neighbors("v0") == {"v2"}
        assert paper_network.degree("v2") == 3  # out: v0, v1; in: v1

    def test_neighbors_unknown_vertex(self, paper_network):
        with pytest.raises(UnknownVertexError):
            paper_network.out_neighbors("missing")


class TestOrderingAndStatistics:
    def test_interactions_sorted_lazily(self):
        network = TemporalInteractionNetwork()
        network.add_interaction(Interaction("a", "b", 5.0, 1.0))
        network.add_interaction(Interaction("b", "c", 1.0, 1.0))
        assert [r.time for r in network.interactions] == [1.0, 5.0]

    def test_total_and_average_quantity(self, paper_network):
        assert paper_network.total_quantity() == 21
        assert paper_network.average_quantity() == pytest.approx(21 / 6)

    def test_average_quantity_empty_network(self):
        assert TemporalInteractionNetwork().average_quantity() == 0.0

    def test_time_span(self, paper_network):
        assert paper_network.time_span() == (1, 8)

    def test_time_span_empty_raises(self):
        with pytest.raises(ValueError):
            TemporalInteractionNetwork().time_span()

    def test_summary_shape(self, paper_network):
        summary = paper_network.summary()
        assert summary["num_vertices"] == 3
        assert summary["num_interactions"] == 6
        assert summary["name"] == "paper-example"

    def test_generated_quantity_by_vertex(self, paper_network):
        # From Table 2: v1 generates 3 + 4 = 7 units, v2 generates 2 units.
        generated = paper_network.generated_quantity_by_vertex()
        assert generated == {"v1": 7, "v2": 2}

    def test_generated_quantity_total_matches_buffers(self, small_network):
        generated = small_network.generated_quantity_by_vertex()
        # All quantity in the network was generated somewhere; the final
        # buffered total over all vertices must equal the generated total.
        from repro.core.engine import ProvenanceEngine
        from repro.policies.no_provenance import NoProvenancePolicy

        engine = ProvenanceEngine(NoProvenancePolicy())
        engine.run(small_network)
        buffered = sum(engine.buffer_totals().values())
        assert buffered == pytest.approx(sum(generated.values()))
