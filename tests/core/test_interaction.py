"""Unit tests for interaction records and their validation."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.interaction import Interaction, sort_interactions, validate_interactions
from repro.exceptions import InvalidInteractionError


class TestInteractionConstruction:
    def test_basic_fields(self):
        interaction = Interaction("a", "b", 1.5, 10.0)
        assert interaction.source == "a"
        assert interaction.destination == "b"
        assert interaction.time == 1.5
        assert interaction.quantity == 10.0

    def test_is_frozen(self):
        interaction = Interaction("a", "b", 1.0, 1.0)
        with pytest.raises(AttributeError):
            interaction.quantity = 5.0

    def test_integer_vertices_allowed(self):
        interaction = Interaction(1, 2, 0.0, 3.0)
        assert interaction.source == 1
        assert interaction.destination == 2

    def test_self_loop_detection(self):
        assert Interaction("a", "a", 1.0, 1.0).is_self_loop
        assert not Interaction("a", "b", 1.0, 1.0).is_self_loop

    def test_negative_time_rejected(self):
        with pytest.raises(InvalidInteractionError):
            Interaction("a", "b", -1.0, 1.0)

    def test_negative_quantity_rejected(self):
        with pytest.raises(InvalidInteractionError):
            Interaction("a", "b", 1.0, -1.0)

    def test_nan_time_rejected(self):
        with pytest.raises(InvalidInteractionError):
            Interaction("a", "b", math.nan, 1.0)

    def test_infinite_quantity_rejected(self):
        with pytest.raises(InvalidInteractionError):
            Interaction("a", "b", 1.0, math.inf)

    def test_non_numeric_time_rejected(self):
        with pytest.raises(InvalidInteractionError):
            Interaction("a", "b", "noon", 1.0)

    def test_boolean_quantity_rejected(self):
        with pytest.raises(InvalidInteractionError):
            Interaction("a", "b", 1.0, True)

    def test_zero_quantity_allowed(self):
        assert Interaction("a", "b", 1.0, 0.0).quantity == 0.0


class TestInteractionTupleRoundTrip:
    def test_as_tuple(self):
        interaction = Interaction("a", "b", 2.0, 3.0)
        assert interaction.as_tuple() == ("a", "b", 2.0, 3.0)

    def test_from_tuple(self):
        interaction = Interaction.from_tuple(("a", "b", "2.5", "7"))
        assert interaction.time == 2.5
        assert interaction.quantity == 7.0

    def test_from_tuple_wrong_length(self):
        with pytest.raises(InvalidInteractionError):
            Interaction.from_tuple(("a", "b", 1.0))

    def test_from_tuple_bad_values(self):
        with pytest.raises(InvalidInteractionError):
            Interaction.from_tuple(("a", "b", "later", "much"))

    def test_round_trip(self):
        interaction = Interaction("x", "y", 5.0, 2.5)
        assert Interaction.from_tuple(interaction.as_tuple()) == interaction


class TestSortAndValidate:
    def test_sort_orders_by_time(self):
        interactions = [
            Interaction("a", "b", 3.0, 1.0),
            Interaction("a", "b", 1.0, 1.0),
            Interaction("a", "b", 2.0, 1.0),
        ]
        ordered = sort_interactions(interactions)
        assert [r.time for r in ordered] == [1.0, 2.0, 3.0]

    def test_sort_is_stable_for_ties(self):
        first = Interaction("a", "b", 1.0, 1.0)
        second = Interaction("c", "d", 1.0, 2.0)
        assert sort_interactions([first, second]) == [first, second]

    def test_validate_passes_sorted_stream(self):
        interactions = [Interaction("a", "b", t, 1.0) for t in (1, 2, 3)]
        assert list(validate_interactions(interactions, require_sorted=True)) == interactions

    def test_validate_rejects_unsorted_when_required(self):
        interactions = [Interaction("a", "b", 2.0, 1.0), Interaction("a", "b", 1.0, 1.0)]
        with pytest.raises(InvalidInteractionError):
            list(validate_interactions(interactions, require_sorted=True))

    def test_validate_accepts_unsorted_when_not_required(self):
        interactions = [Interaction("a", "b", 2.0, 1.0), Interaction("a", "b", 1.0, 1.0)]
        assert len(list(validate_interactions(interactions))) == 2

    def test_validate_rejects_self_loops_when_disallowed(self):
        with pytest.raises(InvalidInteractionError):
            list(
                validate_interactions(
                    [Interaction("a", "a", 1.0, 1.0)], allow_self_loops=False
                )
            )

    def test_validate_converts_raw_tuples(self):
        result = list(validate_interactions([("a", "b", 1.0, 2.0)]))
        assert result == [Interaction("a", "b", 1.0, 2.0)]


@given(
    time=st.floats(min_value=0, max_value=1e12, allow_nan=False, allow_infinity=False),
    quantity=st.floats(min_value=0, max_value=1e12, allow_nan=False, allow_infinity=False),
)
def test_property_valid_interactions_accept_all_finite_nonnegative(time, quantity):
    interaction = Interaction("s", "d", time, quantity)
    assert interaction.time == time
    assert interaction.quantity == quantity


@given(
    times=st.lists(
        st.floats(min_value=0, max_value=1e6, allow_nan=False, allow_infinity=False),
        min_size=1,
        max_size=50,
    )
)
def test_property_sort_interactions_is_monotone(times):
    interactions = [Interaction("a", "b", t, 1.0) for t in times]
    ordered = sort_interactions(interactions)
    assert all(
        ordered[i].time <= ordered[i + 1].time for i in range(len(ordered) - 1)
    )
