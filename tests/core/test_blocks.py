"""Unit tests for the columnar substrate: VertexInterner and InteractionBlock."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.blocks import InteractionBlock, VertexInterner
from repro.core.interaction import Interaction
from repro.datasets.catalog import load_preset


class TestVertexInterner:
    def test_ids_are_dense_and_stable(self):
        interner = VertexInterner()
        assert interner.intern("a") == 0
        assert interner.intern("b") == 1
        assert interner.intern("a") == 0
        assert len(interner) == 2
        assert interner.vertex_of(1) == "b"
        assert interner.id_of("b") == 1
        assert "a" in interner and "c" not in interner
        assert interner.get_id("c") == -1

    def test_seeding_preserves_order(self):
        interner = VertexInterner(["x", "y", "z"])
        assert [interner.id_of(v) for v in ("x", "y", "z")] == [0, 1, 2]
        assert interner.vertices == ["x", "y", "z"]

    def test_snapshot_restore_round_trip(self):
        interner = VertexInterner(["a", "b", "c"])
        snapshot = interner.snapshot()
        restored = VertexInterner()
        restored.restore(snapshot)
        assert len(restored) == 3
        assert restored.id_of("b") == 1
        assert restored.vertex_of(2) == "c"
        # The restored table keeps interning consistently past the snapshot.
        assert restored.intern("d") == 3

    def test_pickle_round_trip(self):
        interner = VertexInterner(["a", "b"])
        clone = pickle.loads(pickle.dumps(interner))
        assert clone.id_of("b") == 1
        assert clone.intern("c") == 2


class TestInteractionBlock:
    def _interactions(self):
        return [
            Interaction("v1", "v2", 1.0, 3.0),
            Interaction("v2", "v0", 3.0, 5.0),
            Interaction("v0", "v1", 4.0, 3.0),
        ]

    def test_from_interactions_round_trip(self):
        interactions = self._interactions()
        block = InteractionBlock.from_interactions(interactions)
        assert len(block) == 3
        assert block.to_interactions() == interactions
        assert list(block) == interactions
        assert block.last_time == 4.0
        assert block.src_ids.dtype == np.int32
        assert block.quantities.dtype == np.float64

    def test_interning_order_is_source_then_destination(self):
        block = InteractionBlock.from_interactions(self._interactions())
        # v1 (source of row 0) before v2 (destination of row 0) before v0.
        assert block.interner.vertices == ["v1", "v2", "v0"]

    def test_interning_order_matches_network_registration(self):
        network = load_preset("taxis", scale=0.05)
        block = network.to_block()
        assert block.interner.vertices == list(network.vertices)
        assert block.to_interactions() == network.interactions

    def test_network_block_is_cached_and_invalidated(self):
        network = load_preset("taxis", scale=0.02)
        block = network.to_block()
        assert network.to_block() is block
        network.add_interaction(Interaction("new", "vertex", 1e9, 1.0))
        fresh = network.to_block()
        assert fresh is not block
        assert len(fresh) == len(block) + 1

    def test_slice_is_zero_copy_view(self):
        block = InteractionBlock.from_interactions(self._interactions())
        piece = block.slice(1, 3)
        assert len(piece) == 2
        assert piece.to_interactions() == self._interactions()[1:]
        assert piece.src_ids.base is not None  # a view, not a copy
        assert piece.interner is block.interner

    def test_take_preserves_order(self):
        block = InteractionBlock.from_interactions(self._interactions())
        taken = block.take(np.array([0, 2]))
        assert taken.to_interactions() == [self._interactions()[0], self._interactions()[2]]

    def test_column_lists_are_plain_python(self):
        block = InteractionBlock.from_interactions(self._interactions())
        sources, destinations, times, quantities = block.column_lists()
        assert sources == [0, 1, 2]
        assert destinations == [1, 2, 0]
        assert times == [1.0, 3.0, 4.0]
        assert all(type(value) is float for value in quantities)

    def test_nbytes_counts_the_four_columns(self):
        block = InteractionBlock.from_interactions(self._interactions())
        # 2 int32 + 2 float64 columns over 3 rows.
        assert block.nbytes == 3 * (4 + 4 + 8 + 8)

    def test_shared_interner_across_blocks(self):
        interner = VertexInterner()
        first = InteractionBlock.from_interactions(self._interactions(), interner)
        second = InteractionBlock.from_interactions(
            [Interaction("v2", "v9", 9.0, 1.0)], interner
        )
        assert second.src_ids[0] == first.interner.id_of("v2")
        assert interner.vertex_of(int(second.dst_ids[0])) == "v9"
