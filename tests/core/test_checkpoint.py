"""Unit tests for policy/engine checkpointing."""

from __future__ import annotations

import pickle

import pytest

from repro.core.checkpoint import load_engine, load_policy, save_engine, save_policy
from repro.core.engine import ProvenanceEngine
from repro.core.interaction import Interaction
from repro.core.provenance import UNKNOWN_ORIGIN
from repro.policies.generation_time import LeastRecentlyBornPolicy
from repro.policies.proportional import ProportionalDensePolicy, ProportionalSparsePolicy
from repro.policies.receipt_order import FifoPolicy
from repro.scalable.budget import BudgetProportionalPolicy
from repro.scalable.windowing import WindowedProportionalPolicy


def run_half(policy, interactions, vertices=()):
    policy.reset(vertices)
    half = len(interactions) // 2
    policy.process_all(interactions[:half])
    return interactions[half:]


class TestPolicyCheckpoint:
    @pytest.mark.parametrize(
        "factory",
        [
            FifoPolicy,
            LeastRecentlyBornPolicy,
            ProportionalSparsePolicy,
            lambda: BudgetProportionalPolicy(capacity=5),
            lambda: WindowedProportionalPolicy(window=100),
        ],
    )
    def test_save_load_resume_equals_uninterrupted(self, factory, small_network, tmp_path):
        interactions = small_network.interactions
        # Uninterrupted reference run.
        reference = factory()
        reference.reset()
        reference.process_all(interactions)

        # Run half, checkpoint, restore, run the rest.
        interrupted = factory()
        remaining = run_half(interrupted, interactions)
        path = tmp_path / "checkpoint.pkl"
        save_policy(interrupted, path)
        restored = load_policy(path)
        restored.process_all(remaining)

        for vertex in reference.tracked_vertices():
            assert restored.buffer_total(vertex) == pytest.approx(
                reference.buffer_total(vertex), rel=1e-9, abs=1e-9
            )
            assert restored.origins(vertex).approx_equal(
                reference.origins(vertex), rel_tol=1e-9, abs_tol=1e-9
            )

    def test_dense_policy_checkpoint(self, small_network, tmp_path):
        interactions = small_network.interactions
        reference = ProportionalDensePolicy(small_network.vertices)
        reference.process_all(interactions)

        interrupted = ProportionalDensePolicy(small_network.vertices)
        half = len(interactions) // 2
        interrupted.process_all(interactions[:half])
        path = tmp_path / "dense.pkl"
        save_policy(interrupted, path)
        restored = load_policy(path)
        restored.process_all(interactions[half:])
        for vertex in reference.tracked_vertices():
            assert restored.origins(vertex).approx_equal(reference.origins(vertex))

    def test_unknown_origin_identity_survives_pickle(self, tmp_path):
        policy = BudgetProportionalPolicy(capacity=1)
        policy.process(Interaction("a", "v", 1.0, 1.0))
        policy.process(Interaction("b", "v", 2.0, 1.0))
        policy.process(Interaction("c", "v", 3.0, 1.0))
        path = tmp_path / "budget.pkl"
        save_policy(policy, path)
        restored = load_policy(path)
        origins = restored.origins("v")
        # The unknown-origin entry must still be recognised as the sentinel.
        assert origins.unknown_quantity > 0
        assert UNKNOWN_ORIGIN in origins

    def test_load_rejects_non_policy(self, tmp_path):
        path = tmp_path / "junk.pkl"
        with path.open("wb") as handle:
            pickle.dump({"not": "a policy"}, handle)
        with pytest.raises(TypeError):
            load_policy(path)


class TestEngineCheckpoint:
    def test_engine_round_trip(self, paper_network, tmp_path):
        engine = ProvenanceEngine(FifoPolicy())
        engine.run(paper_network)
        path = tmp_path / "engine.pkl"
        save_engine(engine, path)
        restored = load_engine(path)
        assert restored.interactions_processed == 6
        assert restored.current_time == 8
        assert restored.origins("v0").approx_equal(engine.origins("v0"))

    def test_restored_engine_keeps_processing(self, paper_network, tmp_path):
        engine = ProvenanceEngine(FifoPolicy())
        engine.run(paper_network)
        path = tmp_path / "engine.pkl"
        save_engine(engine, path)
        restored = load_engine(path)
        restored.step(Interaction("v0", "v2", 9.0, 1.0))
        assert restored.interactions_processed == 7
        assert restored.buffer_total("v0") == pytest.approx(2.0)

    def test_load_rejects_non_engine_payload(self, tmp_path):
        path = tmp_path / "junk.pkl"
        with path.open("wb") as handle:
            pickle.dump([1, 2, 3], handle)
        with pytest.raises(TypeError):
            load_engine(path)
