"""Unit and property-based tests for the buffer data structures."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.buffer import BufferEntry, FifoBuffer, HeapBuffer, LifoBuffer


def entry(origin="o", quantity=1.0, birth_time=0.0, path=None):
    return BufferEntry(origin=origin, quantity=quantity, birth_time=birth_time, path=path)


class TestBufferEntry:
    def test_split_returns_piece_with_same_origin(self):
        original = entry(quantity=5.0, birth_time=2.0, path=("o",))
        piece = original.split(2.0)
        assert piece.quantity == 2.0
        assert original.quantity == 3.0
        assert piece.origin == original.origin
        assert piece.birth_time == original.birth_time
        assert piece.path == original.path

    def test_split_whole_amount_not_allowed_above_quantity(self):
        with pytest.raises(ValueError):
            entry(quantity=1.0).split(2.0)

    def test_split_zero_rejected(self):
        with pytest.raises(ValueError):
            entry(quantity=1.0).split(0.0)

    def test_copy_is_independent(self):
        original = entry(quantity=4.0)
        clone = original.copy()
        clone.quantity = 1.0
        assert original.quantity == 4.0


class TestHeapBuffer:
    def test_oldest_first_selection(self):
        buffer = HeapBuffer(oldest_first=True)
        buffer.push(entry("a", 1.0, birth_time=5.0))
        buffer.push(entry("b", 1.0, birth_time=1.0))
        buffer.push(entry("c", 1.0, birth_time=3.0))
        drained = buffer.drain(3.0)
        assert [e.origin for e in drained] == ["b", "c", "a"]

    def test_newest_first_selection(self):
        buffer = HeapBuffer(oldest_first=False)
        buffer.push(entry("a", 1.0, birth_time=5.0))
        buffer.push(entry("b", 1.0, birth_time=1.0))
        drained = buffer.drain(2.0)
        assert [e.origin for e in drained] == ["a", "b"]

    def test_tie_break_is_insertion_order(self):
        buffer = HeapBuffer(oldest_first=True)
        buffer.push(entry("first", 1.0, birth_time=1.0))
        buffer.push(entry("second", 1.0, birth_time=1.0))
        drained = buffer.drain(2.0)
        assert [e.origin for e in drained] == ["first", "second"]

    def test_total_tracks_pushes_and_drains(self):
        buffer = HeapBuffer()
        buffer.push(entry("a", 4.0))
        buffer.push(entry("b", 3.0))
        assert buffer.total == 7.0
        buffer.drain(5.0)
        assert buffer.total == pytest.approx(2.0)

    def test_partial_drain_splits_entry(self):
        buffer = HeapBuffer()
        buffer.push(entry("a", 4.0, birth_time=1.0))
        drained = buffer.drain(1.5)
        assert len(drained) == 1
        assert drained[0].quantity == pytest.approx(1.5)
        assert buffer.total == pytest.approx(2.5)
        assert len(buffer) == 1

    def test_drain_more_than_available_returns_everything(self):
        buffer = HeapBuffer()
        buffer.push(entry("a", 2.0))
        drained = buffer.drain(10.0)
        assert sum(e.quantity for e in drained) == pytest.approx(2.0)
        assert buffer.is_empty()

    def test_drain_negative_rejected(self):
        with pytest.raises(ValueError):
            HeapBuffer().drain(-1.0)

    def test_origins_aggregation(self):
        buffer = HeapBuffer()
        buffer.push(entry("a", 2.0))
        buffer.push(entry("a", 3.0))
        buffer.push(entry("b", 1.0))
        origins = buffer.origins()
        assert origins.as_dict() == {"a": 5.0, "b": 1.0}


class TestFifoLifoBuffers:
    def test_fifo_order(self):
        buffer = FifoBuffer()
        for name in "abc":
            buffer.push(entry(name, 1.0))
        assert [e.origin for e in buffer.drain(3.0)] == ["a", "b", "c"]

    def test_lifo_order(self):
        buffer = LifoBuffer()
        for name in "abc":
            buffer.push(entry(name, 1.0))
        assert [e.origin for e in buffer.drain(3.0)] == ["c", "b", "a"]

    def test_fifo_partial_split_keeps_head(self):
        buffer = FifoBuffer()
        buffer.push(entry("a", 5.0))
        buffer.push(entry("b", 5.0))
        drained = buffer.drain(7.0)
        assert [(e.origin, e.quantity) for e in drained] == [("a", 5.0), ("b", 2.0)]
        assert buffer.total == pytest.approx(3.0)

    def test_lifo_len_and_empty(self):
        buffer = LifoBuffer()
        assert buffer.is_empty()
        buffer.push(entry("a", 1.0))
        assert len(buffer) == 1
        buffer.drain(1.0)
        assert buffer.is_empty()


@pytest.mark.parametrize("buffer_cls", [HeapBuffer, FifoBuffer, LifoBuffer])
class TestBufferSharedBehaviour:
    def test_drain_conserves_quantity(self, buffer_cls):
        buffer = buffer_cls()
        for index in range(10):
            buffer.push(entry(f"o{index}", float(index + 1), birth_time=float(index)))
        before = buffer.total
        drained = buffer.drain(17.5)
        assert sum(e.quantity for e in drained) == pytest.approx(17.5)
        assert buffer.total == pytest.approx(before - 17.5)

    def test_drain_zero_returns_nothing(self, buffer_cls):
        buffer = buffer_cls()
        buffer.push(entry("a", 1.0))
        assert buffer.drain(0.0) == []
        assert buffer.total == 1.0


@given(
    quantities=st.lists(
        st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
        min_size=1,
        max_size=30,
    ),
    fraction=st.floats(min_value=0.0, max_value=1.0),
)
@pytest.mark.parametrize("buffer_cls", [HeapBuffer, FifoBuffer, LifoBuffer])
def test_property_drain_conservation(buffer_cls, quantities, fraction):
    """Draining any amount conserves total quantity across buffer + drained."""
    buffer = buffer_cls()
    for index, quantity in enumerate(quantities):
        buffer.push(entry(f"o{index % 3}", quantity, birth_time=float(index)))
    total_before = buffer.total
    amount = total_before * fraction
    drained = buffer.drain(amount)
    drained_total = sum(e.quantity for e in drained)
    assert drained_total == pytest.approx(min(amount, total_before), rel=1e-9, abs=1e-9)
    assert buffer.total + drained_total == pytest.approx(total_before, rel=1e-9, abs=1e-9)
