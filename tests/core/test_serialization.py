"""Unit tests for JSON serialization of provenance results."""

from __future__ import annotations

import json

import pytest

from repro.core.engine import ProvenanceEngine
from repro.core.provenance import UNKNOWN_ORIGIN, OriginSet, ProvenanceSnapshot
from repro.core.serialization import (
    origin_set_from_dict,
    origin_set_to_dict,
    read_snapshot_json,
    snapshot_from_dict,
    snapshot_to_dict,
    write_snapshot_json,
)
from repro.policies.receipt_order import FifoPolicy


class TestOriginSetSerialization:
    def test_round_trip(self):
        origins = OriginSet({"a": 2.0, "b": 1.0, 3: 0.5})
        rebuilt = origin_set_from_dict(origin_set_to_dict(origins))
        assert rebuilt.approx_equal(origins)

    def test_total_included(self):
        payload = origin_set_to_dict(OriginSet({"a": 2.0, "b": 1.0}))
        assert payload["total"] == pytest.approx(3.0)

    def test_origins_sorted_by_quantity(self):
        payload = origin_set_to_dict(OriginSet({"small": 1.0, "big": 5.0}))
        assert payload["origins"][0]["origin"] == "big"

    def test_unknown_origin_round_trip(self):
        origins = OriginSet({"a": 2.0, UNKNOWN_ORIGIN: 1.5})
        rebuilt = origin_set_from_dict(origin_set_to_dict(origins))
        assert rebuilt.unknown_quantity == pytest.approx(1.5)
        assert UNKNOWN_ORIGIN in rebuilt

    def test_payload_is_json_serialisable(self):
        origins = OriginSet({"a": 2.0, UNKNOWN_ORIGIN: 1.5, 7: 0.25})
        json.dumps(origin_set_to_dict(origins))  # must not raise

    def test_non_primitive_vertices_become_strings(self):
        origins = OriginSet({("compound", 1): 2.0})
        payload = origin_set_to_dict(origins)
        assert isinstance(payload["origins"][0]["origin"], str)

    def test_empty_set(self):
        rebuilt = origin_set_from_dict(origin_set_to_dict(OriginSet()))
        assert len(rebuilt) == 0


class TestSnapshotSerialization:
    def make_snapshot(self, paper_network):
        engine = ProvenanceEngine(FifoPolicy())
        engine.run(paper_network)
        return engine.snapshot()

    def test_round_trip(self, paper_network):
        snapshot = self.make_snapshot(paper_network)
        rebuilt = snapshot_from_dict(snapshot_to_dict(snapshot))
        assert rebuilt.time == snapshot.time
        assert rebuilt.interactions_processed == snapshot.interactions_processed
        assert set(rebuilt) == set(snapshot)
        for vertex in snapshot:
            assert rebuilt[vertex].approx_equal(snapshot[vertex])

    def test_json_file_round_trip(self, paper_network, tmp_path):
        snapshot = self.make_snapshot(paper_network)
        path = tmp_path / "snapshot.json"
        write_snapshot_json(snapshot, path)
        rebuilt = read_snapshot_json(path)
        assert rebuilt.total_quantity() == pytest.approx(snapshot.total_quantity())

    def test_file_is_valid_json(self, paper_network, tmp_path):
        snapshot = self.make_snapshot(paper_network)
        path = tmp_path / "snapshot.json"
        write_snapshot_json(snapshot, path)
        payload = json.loads(path.read_text())
        assert "vertices" in payload
        assert payload["interactions_processed"] == 6

    def test_empty_snapshot(self):
        snapshot = ProvenanceSnapshot(time=0.0, interactions_processed=0, origins={})
        rebuilt = snapshot_from_dict(snapshot_to_dict(snapshot))
        assert len(rebuilt) == 0
