"""Unit tests for the ProvenanceEngine."""

from __future__ import annotations

import pytest

from repro.core.engine import ProvenanceEngine
from repro.core.interaction import Interaction
from repro.policies.no_provenance import NoProvenancePolicy
from repro.policies.proportional import ProportionalDensePolicy
from repro.policies.receipt_order import FifoPolicy


class TestRun:
    def test_run_on_network_paper_totals(self, paper_network):
        engine = ProvenanceEngine(FifoPolicy())
        statistics = engine.run(paper_network)
        assert statistics.interactions == 6
        # Final buffer totals from Table 2.
        assert engine.buffer_total("v0") == pytest.approx(3)
        assert engine.buffer_total("v1") == pytest.approx(2)
        assert engine.buffer_total("v2") == pytest.approx(4)

    def test_run_on_plain_iterable(self, paper_interactions):
        engine = ProvenanceEngine(FifoPolicy())
        statistics = engine.run(paper_interactions)
        assert statistics.interactions == 6
        assert engine.buffer_total("v0") == pytest.approx(3)

    def test_run_passes_vertex_universe_to_dense_policy(self, paper_network):
        engine = ProvenanceEngine(ProportionalDensePolicy(paper_network.vertices))
        engine.run(paper_network)
        assert engine.buffer_total("v0") == pytest.approx(3)

    def test_limit(self, paper_network):
        engine = ProvenanceEngine(FifoPolicy())
        statistics = engine.run(paper_network, limit=2)
        assert statistics.interactions == 2
        assert engine.buffer_total("v0") == pytest.approx(5)

    def test_run_resets_by_default(self, paper_network):
        engine = ProvenanceEngine(FifoPolicy())
        engine.run(paper_network)
        engine.run(paper_network)
        assert engine.buffer_total("v0") == pytest.approx(3)

    def test_run_without_reset_continues(self, paper_network):
        engine = ProvenanceEngine(FifoPolicy())
        engine.run(paper_network)
        total_after_first = sum(engine.buffer_totals().values())
        engine.run(paper_network, reset=False)
        # State is kept: the engine has now processed the stream twice and
        # buffers only grow (replaying can generate less, never lose quantity).
        assert engine.interactions_processed == 12
        assert sum(engine.buffer_totals().values()) >= total_after_first

    def test_statistics_fields(self, small_network):
        engine = ProvenanceEngine(FifoPolicy())
        statistics = engine.run(small_network, sample_every=100)
        assert statistics.interactions == small_network.num_interactions
        assert statistics.elapsed_seconds >= 0
        assert statistics.final_entry_count > 0
        assert statistics.peak_entry_count >= statistics.final_entry_count or (
            statistics.peak_entry_count == statistics.final_entry_count
        )
        assert len(statistics.samples) == len(statistics.sampled_entry_counts)
        assert statistics.interactions_per_second >= 0

    def test_interactions_per_second_zero_elapsed(self):
        from repro.core.engine import RunStatistics

        assert RunStatistics(interactions=5, elapsed_seconds=0.0).interactions_per_second == 0.0


class _ShrinkingPolicy(NoProvenancePolicy):
    """Entry count grows to a peak and then collapses (like windowed resets)."""

    def __init__(self, shrink_at: int):
        super().__init__()
        self.shrink_at = shrink_at
        self._processed = 0

    def process(self, interaction):
        super().process(interaction)
        self._processed += 1
        if self._processed == self.shrink_at:
            self._buffers.clear()

    def process_many(self, interactions):
        for interaction in interactions:
            self.process(interaction)


def _distinct_pair_stream(count, *, repeated_after=None):
    """Distinct vertex pairs (entry count grows), optionally one repeated
    pair from ``repeated_after`` on (entry count stays flat after that)."""
    interactions = []
    for index in range(count):
        if repeated_after is not None and index >= repeated_after:
            interactions.append(Interaction("x", "y", float(index), 1.0))
        else:
            interactions.append(Interaction(f"s{index}", f"d{index}", float(index), 1.0))
    return interactions


class TestPeakEntryCount:
    def test_peak_tracked_without_sampling(self):
        # Entries grow until interaction 1500, then collapse to zero.  With
        # sample_every=0 the seed engine reported peak == final == 0; the
        # geometric cadence must observe the pre-collapse peak at 1024.
        policy = _ShrinkingPolicy(shrink_at=1500)
        engine = ProvenanceEngine(policy)
        stream = _distinct_pair_stream(3000, repeated_after=1500)
        statistics = engine.run(stream)
        assert statistics.final_entry_count <= 2
        assert statistics.peak_entry_count >= 2048

    def test_peak_tracked_without_sampling_batched(self):
        policy = _ShrinkingPolicy(shrink_at=1500)
        engine = ProvenanceEngine(policy)
        stream = _distinct_pair_stream(3000, repeated_after=1500)
        statistics = engine.run(stream, batch_size=256)
        assert statistics.final_entry_count <= 2
        assert statistics.peak_entry_count >= 2048

    def test_peak_with_sampling_unchanged(self):
        policy = _ShrinkingPolicy(shrink_at=1500)
        engine = ProvenanceEngine(policy)
        stream = _distinct_pair_stream(3000, repeated_after=1500)
        statistics = engine.run(stream, sample_every=100)
        # Sampling at 100-interaction cadence sees the true peak region.
        assert statistics.peak_entry_count >= 2800
        assert statistics.samples[0] == 100

    def test_peak_never_below_final(self, small_network):
        engine = ProvenanceEngine(FifoPolicy())
        statistics = engine.run(small_network)
        assert statistics.peak_entry_count >= statistics.final_entry_count


class TestBatchedRun:
    def test_batched_matches_per_interaction(self, small_network):
        per_item = ProvenanceEngine(FifoPolicy())
        stats_a = per_item.run(small_network, sample_every=50)
        batched = ProvenanceEngine(FifoPolicy())
        stats_b = batched.run(small_network, sample_every=50, batch_size=64)
        assert stats_a.interactions == stats_b.interactions
        assert stats_a.samples == stats_b.samples
        assert stats_a.sampled_entry_counts == stats_b.sampled_entry_counts
        assert per_item.buffer_totals() == batched.buffer_totals()
        for vertex in per_item.buffer_totals():
            assert per_item.origins(vertex) == batched.origins(vertex)

    def test_batched_respects_limit(self, paper_network):
        engine = ProvenanceEngine(FifoPolicy())
        statistics = engine.run(paper_network, limit=2, batch_size=4)
        assert statistics.interactions == 2
        assert engine.interactions_processed == 2
        assert engine.buffer_total("v0") == pytest.approx(5)

    def test_batched_updates_counters(self, paper_network):
        engine = ProvenanceEngine(FifoPolicy())
        engine.run(paper_network, batch_size=4)
        assert engine.interactions_processed == 6
        assert engine.current_time == 8

    def test_observers_force_per_interaction(self, paper_network):
        positions = []
        engine = ProvenanceEngine(
            FifoPolicy(),
            observers=[lambda _engine, _interaction, position: positions.append(position)],
        )
        engine.run(paper_network, batch_size=4)
        # Every single interaction was observed despite the batch request.
        assert positions == [0, 1, 2, 3, 4, 5]


class TestStepAndObservers:
    def test_step_updates_time_and_count(self):
        engine = ProvenanceEngine(FifoPolicy())
        engine.policy.reset()
        engine.step(Interaction("a", "b", 1.0, 2.0))
        engine.step(Interaction("b", "c", 2.0, 1.0))
        assert engine.interactions_processed == 2
        assert engine.current_time == 2.0

    def test_observer_called_per_interaction(self, paper_network):
        seen = []

        def observer(engine, interaction, position):
            seen.append((position, interaction.time))

        engine = ProvenanceEngine(FifoPolicy(), observers=[observer])
        engine.run(paper_network)
        assert seen == [(0, 1), (1, 3), (2, 4), (3, 5), (4, 7), (5, 8)]

    def test_add_and_remove_observer(self, paper_network):
        calls = []
        observer = lambda engine, interaction, position: calls.append(position)  # noqa: E731
        engine = ProvenanceEngine(FifoPolicy())
        engine.add_observer(observer)
        engine.run(paper_network)
        assert len(calls) == 6
        engine.remove_observer(observer)
        engine.run(paper_network)
        assert len(calls) == 6

    def test_remove_unknown_observer_is_noop(self):
        engine = ProvenanceEngine(FifoPolicy())
        engine.remove_observer(lambda *args: None)


class TestQueries:
    def test_snapshot_contains_all_nonempty_vertices(self, paper_network):
        engine = ProvenanceEngine(FifoPolicy())
        engine.run(paper_network)
        snapshot = engine.snapshot()
        assert set(snapshot) == {"v0", "v1", "v2"}
        assert snapshot.total_quantity() == pytest.approx(9)
        assert snapshot.interactions_processed == 6
        assert snapshot.time == 8

    def test_buffer_totals_only_nonempty(self, paper_interactions):
        # After the second interaction both v1 and v2 are empty.
        engine = ProvenanceEngine(FifoPolicy())
        engine.run(paper_interactions[:2])
        totals = engine.buffer_totals()
        assert set(totals) == {"v0"}
        assert totals["v0"] == pytest.approx(5)

    def test_origins_empty_for_noprov(self, paper_network):
        engine = ProvenanceEngine(NoProvenancePolicy())
        engine.run(paper_network)
        assert len(engine.origins("v0")) == 0

    def test_buffer_total_unknown_vertex_is_zero(self, paper_network):
        engine = ProvenanceEngine(FifoPolicy())
        engine.run(paper_network)
        assert engine.buffer_total("never-seen") == 0.0
