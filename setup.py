"""Legacy setup shim.

The project metadata lives in ``pyproject.toml``; this file only exists so
``pip install -e . --no-use-pep517`` works in offline environments where the
``wheel`` package (required for PEP 660 editable installs) is unavailable.
"""

from setuptools import setup

setup()
